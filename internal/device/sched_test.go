package device

import (
	"testing"

	"bps/internal/sim"
)

func TestSchedPolicyStrings(t *testing.T) {
	if FCFS.String() != "fcfs" || SSTF.String() != "sstf" || SCAN.String() != "scan" {
		t.Fatal("policy strings wrong")
	}
	if SchedPolicy(9).String() != "SchedPolicy(9)" {
		t.Fatal("unknown policy string wrong")
	}
}

// randomWorkload issues n scattered single-block reads from k concurrent
// processes through a scheduler on an HDD, returning the makespan.
func randomWorkload(t *testing.T, policy SchedPolicy) sim.Time {
	t.Helper()
	e := sim.NewEngine(11)
	hdd := NewHDD(e, DefaultHDD())
	sched := NewScheduler(e, hdd, policy)
	offsets := []int64{
		200e9, 10e9, 150e9, 40e9, 220e9, 70e9, 120e9, 5e9,
		180e9, 90e9, 240e9, 30e9, 160e9, 60e9, 110e9, 20e9,
	}
	for k := 0; k < 4; k++ {
		k := k
		e.Spawn("client", func(p *sim.Proc) {
			for i := k; i < len(offsets); i += 4 {
				if err := sched.Access(p, Request{Offset: offsets[i], Size: 4096}); err != nil {
					t.Error(err)
				}
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := sched.Dispatched(); got != uint64(len(offsets)) {
		t.Fatalf("dispatched %d, want %d", got, len(offsets))
	}
	return e.Now()
}

func TestElevatorBeatsFCFSOnRandomLoad(t *testing.T) {
	fcfs := randomWorkload(t, FCFS)
	sstf := randomWorkload(t, SSTF)
	scan := randomWorkload(t, SCAN)
	if sstf >= fcfs {
		t.Errorf("SSTF (%v) not faster than FCFS (%v)", sstf, fcfs)
	}
	if scan >= fcfs {
		t.Errorf("SCAN (%v) not faster than FCFS (%v)", scan, fcfs)
	}
}

func TestSchedulerFCFSPreservesArrivalOrder(t *testing.T) {
	e := sim.NewEngine(1)
	ram := NewRAMDisk(e, "ram", 1<<30, sim.Millisecond, 1e9)
	sched := NewScheduler(e, ram, FCFS)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		e.Spawn("c", func(p *sim.Proc) {
			p.Sleep(sim.Time(i) * sim.Microsecond) // deterministic arrival order
			if err := sched.Access(p, Request{Offset: int64(i) * 4096, Size: 4096}); err != nil {
				t.Error(err)
			}
			order = append(order, i)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("completion order = %v", order)
		}
	}
}

func TestSchedulerPropagatesErrors(t *testing.T) {
	e := sim.NewEngine(1)
	ram := NewRAMDisk(e, "ram", 1<<20, 0, 1e9)
	sched := NewScheduler(e, ram, SCAN)
	e.Spawn("c", func(p *sim.Proc) {
		if err := sched.Access(p, Request{Offset: 2 << 20, Size: 4096}); err == nil {
			t.Error("out-of-capacity request succeeded through scheduler")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulerDelegation(t *testing.T) {
	e := sim.NewEngine(1)
	ram := NewRAMDisk(e, "ram", 1<<30, 0, 1e9)
	sched := NewScheduler(e, ram, SCAN)
	if sched.Name() != "ram+scan" {
		t.Fatalf("name = %q", sched.Name())
	}
	if sched.Capacity() != 1<<30 {
		t.Fatalf("capacity = %d", sched.Capacity())
	}
	e.Spawn("c", func(p *sim.Proc) {
		if err := sched.Access(p, Request{Offset: 0, Size: 4096}); err != nil {
			t.Error(err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sched.Stats().Reads != 1 {
		t.Fatalf("stats = %+v", sched.Stats())
	}
	if sched.QueueLen() != 0 {
		t.Fatalf("queue = %d after drain", sched.QueueLen())
	}
}

func TestSCANSweepsBothDirections(t *testing.T) {
	// Requests on both sides of the head: the elevator must serve the
	// upward batch in ascending order, then the downward batch in
	// descending order.
	e := sim.NewEngine(1)
	ram := NewRAMDisk(e, "ram", 1<<30, sim.Millisecond, 1e12)
	sched := NewScheduler(e, ram, SCAN)
	var served []int64
	offsets := []int64{500e6, 100e6, 700e6, 300e6}
	wg := e.NewWaitGroup()
	wg.Add(len(offsets))
	for _, off := range offsets {
		off := off
		e.Spawn("c", func(p *sim.Proc) {
			if err := sched.Access(p, Request{Offset: off, Size: 4096}); err != nil {
				t.Error(err)
			}
			served = append(served, off)
			wg.Done()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Head starts at 0 sweeping upward: ascending order overall.
	want := []int64{100e6, 300e6, 500e6, 700e6}
	for i := range want {
		if served[i] != want[i] {
			t.Fatalf("served order %v, want %v", served, want)
		}
	}
}
