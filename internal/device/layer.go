package device

import (
	"bps/internal/ioreq"
	"bps/internal/sim"
)

// Layer adapts d into a terminal ioreq layer: request offsets are
// device byte offsets.
func Layer(d Device) ioreq.Layer {
	return ioreq.Func(func(p *sim.Proc, req *ioreq.Request) error {
		return d.Access(p, Request{Offset: req.Off, Size: req.Size, Write: req.Op == ioreq.OpWrite})
	})
}
