package device

import (
	"bps/internal/sim"
)

// SSDConfig parameterizes a flash SSD. The defaults (see DefaultSSD)
// approximate the PCI-E X4 100 GB SSD in the BPS paper's testbed.
type SSDConfig struct {
	Name     string
	Capacity int64 // bytes

	// Channels is the number of independent flash channels. A request is
	// striped across min(Channels, ceil(Size/ChannelChunk)) channels, so
	// large requests approach Channels×ChannelRate while small requests
	// are latency-bound.
	Channels     int
	ChannelRate  float64 // bytes/second per channel
	ChannelChunk int64   // striping granularity in bytes

	ReadLatency     sim.Time // per-request flash read latency
	WriteLatency    sim.Time // per-request program latency
	CommandOverhead sim.Time // controller/bus cost per request

	// WriteAmplification (≥ 1, default 1) multiplies the NAND traffic of
	// every write — the FTL's garbage-collection overhead. Write service
	// time scales with the amplified size and NANDWritten tracks the
	// physical bytes programmed.
	WriteAmplification float64

	// GCPauseEvery and GCPause model foreground garbage collection: after
	// every GCPauseEvery bytes of NAND writes the device stalls all
	// channels for GCPause (0 disables), producing the latency spikes
	// real drives show under sustained writes.
	GCPauseEvery int64
	GCPause      sim.Time
}

// DefaultSSD returns a configuration approximating the paper's PCI-E X4
// 100 GB SSD: ~60 µs read latency, ~800 MB/s peak sequential read across
// 8 channels.
func DefaultSSD() SSDConfig {
	return SSDConfig{
		Name:            "ssd",
		Capacity:        100e9,
		Channels:        8,
		ChannelRate:     100e6,
		ChannelChunk:    64 << 10,
		ReadLatency:     60 * sim.Microsecond,
		WriteLatency:    250 * sim.Microsecond,
		CommandOverhead: 20 * sim.Microsecond,
	}
}

// SSD is a simulated flash device. Each request atomically acquires the
// channels it stripes across; independent requests proceed in parallel as
// long as free channels remain, which is what rewards I/O concurrency on
// flash.
type SSD struct {
	cfg      SSDConfig
	channels *sim.Resource
	ins      instruments
	stats    Stats

	nandWritten int64 // physical bytes programmed (amplified)
	gcCredit    int64 // NAND bytes written since the last GC pause
	gcPauses    uint64
}

// NewSSD constructs an SSD bound to the engine. Invalid configurations
// panic at construction.
func NewSSD(e *sim.Engine, cfg SSDConfig) *SSD {
	if cfg.Capacity <= 0 || cfg.Channels < 1 || cfg.ChannelRate <= 0 {
		panic("device: invalid SSD config: capacity, channels and rate must be positive")
	}
	if cfg.ChannelChunk <= 0 {
		cfg.ChannelChunk = 64 << 10
	}
	if cfg.WriteAmplification < 1 {
		cfg.WriteAmplification = 1
	}
	d := &SSD{
		cfg:      cfg,
		channels: e.NewResource(cfg.Name+".channels", cfg.Channels),
	}
	d.ins = newInstruments(e, cfg.Name, d.channels)
	return d
}

// NANDWritten returns the physical bytes programmed, including the
// FTL's write amplification — the device-level analogue of the I/O
// stack's extra data movement.
func (d *SSD) NANDWritten() int64 { return d.nandWritten }

// GCPauses returns how many foreground garbage-collection stalls
// occurred.
func (d *SSD) GCPauses() uint64 { return d.gcPauses }

// Name implements Device.
func (d *SSD) Name() string { return d.cfg.Name }

// Capacity implements Device.
func (d *SSD) Capacity() int64 { return d.cfg.Capacity }

// Stats implements Device.
func (d *SSD) Stats() Stats { return d.stats }

// BusyTime implements Device.
func (d *SSD) BusyTime() sim.Time { return d.channels.BusyTime() }

// fanout returns how many channels a request of the given size stripes
// across.
func (d *SSD) fanout(size int64) int {
	chunks := (size + d.cfg.ChannelChunk - 1) / d.cfg.ChannelChunk
	if chunks < 1 {
		chunks = 1
	}
	if chunks > int64(d.cfg.Channels) {
		return d.cfg.Channels
	}
	return int(chunks)
}

// serviceTime returns the time to move the request across k channels.
// Writes transfer their amplified (NAND) size.
func (d *SSD) serviceTime(req Request, k int) sim.Time {
	t := d.cfg.CommandOverhead
	size := req.Size
	if req.Write {
		t += d.cfg.WriteLatency
		size = d.amplified(req.Size)
	} else {
		t += d.cfg.ReadLatency
	}
	return t + sim.TransferTime(size, float64(k)*d.cfg.ChannelRate)
}

// amplified returns the NAND traffic of a logical write.
func (d *SSD) amplified(size int64) int64 {
	return int64(float64(size)*d.cfg.WriteAmplification + 0.5)
}

// Access implements Device.
func (d *SSD) Access(p *sim.Proc, req Request) error {
	if err := req.Validate(d.cfg.Capacity); err != nil {
		d.stats.Errors++
		d.ins.errors.Add(1)
		return err
	}
	k := d.fanout(req.Size)
	sp := d.ins.begin(p, req) // span covers channel wait + service
	d.channels.AcquireN(p, k)
	svc := d.serviceTime(req, k)
	p.Sleep(svc)
	if req.Write {
		nand := d.amplified(req.Size)
		d.nandWritten += nand
		d.gcCredit += nand
	}
	d.account(req)
	d.channels.ReleaseN(k)
	d.ins.done(req, svc)
	sp.End()
	d.maybeGC(p)
	return nil
}

// maybeGC stalls the whole device for a garbage-collection pause when
// enough NAND traffic has accumulated. The writer that crosses the
// threshold pays the pause while holding every channel, so concurrent
// requests queue behind it — the foreground-GC latency spike.
func (d *SSD) maybeGC(p *sim.Proc) {
	if d.cfg.GCPauseEvery <= 0 || d.cfg.GCPause <= 0 {
		return
	}
	for d.gcCredit >= d.cfg.GCPauseEvery {
		d.gcCredit -= d.cfg.GCPauseEvery
		d.gcPauses++
		d.channels.AcquireN(p, d.cfg.Channels)
		p.Sleep(d.cfg.GCPause)
		d.channels.ReleaseN(d.cfg.Channels)
	}
}

func (d *SSD) account(req Request) {
	if req.Write {
		d.stats.Writes++
		d.stats.BytesWritten += req.Size
	} else {
		d.stats.Reads++
		d.stats.BytesRead += req.Size
	}
}
