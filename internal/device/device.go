// Package device provides simulated block storage devices: a rotating
// hard disk (HDD) with a distance-dependent seek curve and zoned transfer
// rates, a flash SSD with channel-level parallelism and read/write
// asymmetry, a RAM disk for testing, and a fault-injecting wrapper.
//
// All devices consume simulated time via the sim engine; none of them move
// real data. They exist so that the I/O-metric experiments from the BPS
// paper can run against storage whose *timing shape* matches real hardware:
// per-operation fixed costs that dominate small requests, serialized disk
// heads that create contention, and parallel channels that reward
// concurrency.
package device

import (
	"errors"
	"fmt"

	"bps/internal/sim"
)

// SectorSize is the unit the BPS paper counts blocks in (512 bytes).
const SectorSize = 512

// Request describes one device access in bytes.
type Request struct {
	Offset int64 // byte offset on the device
	Size   int64 // bytes, > 0
	Write  bool
}

// End returns the first byte offset past the request.
func (r Request) End() int64 { return r.Offset + r.Size }

// Validate reports whether the request is well-formed for a device of the
// given capacity.
func (r Request) Validate(capacity int64) error {
	switch {
	case r.Size <= 0:
		return fmt.Errorf("device: request size %d must be positive", r.Size)
	case r.Offset < 0:
		return fmt.Errorf("device: negative offset %d", r.Offset)
	case r.End() > capacity:
		return fmt.Errorf("device: request [%d,%d) exceeds capacity %d", r.Offset, r.End(), capacity)
	}
	return nil
}

// Stats aggregates device activity counters.
type Stats struct {
	Reads        uint64
	Writes       uint64
	BytesRead    int64
	BytesWritten int64
	Errors       uint64
}

// Ops returns the total number of operations.
func (s Stats) Ops() uint64 { return s.Reads + s.Writes }

// Bytes returns the total bytes moved.
func (s Stats) Bytes() int64 { return s.BytesRead + s.BytesWritten }

// Device is a simulated block device. Access blocks the calling simulation
// process for the duration of the request's service and returns an error
// for malformed or injected-fault requests. Failed requests still consume
// service time — exactly the situation in which the BPS paper counts
// unsuccessful accesses in B (§III.A).
type Device interface {
	Name() string
	Capacity() int64
	Access(p *sim.Proc, req Request) error
	Stats() Stats
	// BusyTime is the simulated time during which the device was serving
	// at least one request.
	BusyTime() sim.Time
}

// ErrInjectedFault is returned by fault-injecting wrappers (the
// deprecated FaultInjector shim and the internal/faults package) for
// requests selected to fail.
var ErrInjectedFault = errors.New("device: injected fault")
