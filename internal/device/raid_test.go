package device

import (
	"testing"
	"testing/quick"

	"bps/internal/sim"
)

func newRAID0(e *sim.Engine, n int, rate float64) *RAID0 {
	members := make([]Device, n)
	for i := range members {
		members[i] = NewRAMDisk(e, "m", 1<<30, 100*sim.Microsecond, rate)
	}
	return NewRAID0(e, "raid0", members, 64<<10)
}

func TestRAID0Construction(t *testing.T) {
	e := sim.NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("empty member list did not panic")
		}
	}()
	NewRAID0(e, "bad", nil, 64<<10)
}

func TestRAID0Capacity(t *testing.T) {
	e := sim.NewEngine(1)
	members := []Device{
		NewRAMDisk(e, "a", 1<<30, 0, 1e9),
		NewRAMDisk(e, "b", 2<<30, 0, 1e9), // larger member truncated
	}
	d := NewRAID0(e, "raid0", members, 64<<10)
	if d.Capacity() != 2<<30 {
		t.Fatalf("capacity = %d, want 2×smallest", d.Capacity())
	}
}

func TestRAID0SplitCoversAndCoalesces(t *testing.T) {
	e := sim.NewEngine(1)
	d := newRAID0(e, 4, 1e9)
	// A 1 MiB read covers 16 stripes over 4 members: one coalesced chunk
	// of 256 KiB per member.
	chunks := d.split(Request{Offset: 0, Size: 1 << 20})
	if len(chunks) != 4 {
		t.Fatalf("chunks = %d, want 4", len(chunks))
	}
	var total int64
	for _, ch := range chunks {
		if ch.req.Size != 256<<10 {
			t.Fatalf("chunk size = %d", ch.req.Size)
		}
		total += ch.req.Size
	}
	if total != 1<<20 {
		t.Fatalf("covered %d", total)
	}
}

// Property: split covers the request exactly for arbitrary geometry.
func TestRAID0SplitProperty(t *testing.T) {
	e := sim.NewEngine(1)
	prop := func(off, size uint32, n uint8) bool {
		d := newRAID0(e, int(n%4)+1, 1e9)
		o := int64(off) % (1 << 28)
		s := int64(size)%(1<<22) + 1
		var sum int64
		for _, ch := range d.split(Request{Offset: o, Size: s}) {
			if ch.req.Size <= 0 {
				return false
			}
			sum += ch.req.Size
		}
		return sum == s
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRAID0ParallelSpeedup(t *testing.T) {
	read := func(n int) sim.Time {
		e := sim.NewEngine(1)
		d := newRAID0(e, n, 100e6)
		e.Spawn("r", func(p *sim.Proc) {
			if err := d.Access(p, Request{Offset: 0, Size: 32 << 20}); err != nil {
				t.Error(err)
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now()
	}
	one, four := read(1), read(4)
	if four*3 > one {
		t.Fatalf("RAID0x4 (%v) not ≳4× faster than x1 (%v)", four, one)
	}
}

func TestRAID0Stats(t *testing.T) {
	e := sim.NewEngine(1)
	d := newRAID0(e, 2, 1e9)
	e.Spawn("rw", func(p *sim.Proc) {
		if err := d.Access(p, Request{Offset: 0, Size: 128 << 10}); err != nil {
			t.Error(err)
		}
		if err := d.Access(p, Request{Offset: 0, Size: 64 << 10, Write: true}); err != nil {
			t.Error(err)
		}
		if err := d.Access(p, Request{Offset: -1, Size: 4}); err == nil {
			t.Error("invalid request accepted")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Reads != 1 || s.Writes != 1 || s.BytesRead != 128<<10 || s.BytesWritten != 64<<10 || s.Errors != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if d.BusyTime() <= 0 {
		t.Fatal("zero busy time")
	}
}

func TestRAID1Construction(t *testing.T) {
	e := sim.NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("single-member RAID1 did not panic")
		}
	}()
	NewRAID1(e, "bad", []Device{NewRAMDisk(e, "m", 1<<30, 0, 1e9)})
}

func TestRAID1WritesMirror(t *testing.T) {
	e := sim.NewEngine(1)
	members := []Device{
		NewRAMDisk(e, "a", 1<<30, 0, 1e9),
		NewRAMDisk(e, "b", 1<<30, 0, 1e9),
	}
	d := NewRAID1(e, "raid1", members)
	e.Spawn("w", func(p *sim.Proc) {
		if err := d.Access(p, Request{Offset: 0, Size: 1 << 20, Write: true}); err != nil {
			t.Error(err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, m := range members {
		if m.Stats().BytesWritten != 1<<20 {
			t.Fatalf("member %d wrote %d, want full mirror", i, m.Stats().BytesWritten)
		}
	}
	if d.Stats().Writes != 1 {
		t.Fatalf("raid writes = %d", d.Stats().Writes)
	}
}

func TestRAID1ReadsBalance(t *testing.T) {
	e := sim.NewEngine(1)
	members := []Device{
		NewRAMDisk(e, "a", 1<<30, 0, 1e9),
		NewRAMDisk(e, "b", 1<<30, 0, 1e9),
	}
	d := NewRAID1(e, "raid1", members)
	e.Spawn("r", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			if err := d.Access(p, Request{Offset: 0, Size: 4096}); err != nil {
				t.Error(err)
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	a, b := members[0].Stats().Reads, members[1].Stats().Reads
	if a != 5 || b != 5 {
		t.Fatalf("read balance = %d/%d, want 5/5", a, b)
	}
}

func TestRAID1WriteSlowestMirrorDominates(t *testing.T) {
	e := sim.NewEngine(1)
	fast := NewRAMDisk(e, "fast", 1<<30, 0, 1e9)
	slow := NewRAMDisk(e, "slow", 1<<30, 0, 10e6)
	d := NewRAID1(e, "raid1", []Device{fast, slow})
	e.Spawn("w", func(p *sim.Proc) {
		if err := d.Access(p, Request{Offset: 0, Size: 10 << 20, Write: true}); err != nil {
			t.Error(err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// 10 MiB at 10 MB/s ≈ 1.05 s: the slow mirror gates the write.
	if e.Now() < sim.Second {
		t.Fatalf("mirrored write finished in %v, ignored slow member", e.Now())
	}
}

func TestRAID1CapacityAndErrors(t *testing.T) {
	e := sim.NewEngine(1)
	d := NewRAID1(e, "raid1", []Device{
		NewRAMDisk(e, "a", 1<<20, 0, 1e9),
		NewRAMDisk(e, "b", 2<<20, 0, 1e9),
	})
	if d.Capacity() != 1<<20 {
		t.Fatalf("capacity = %d, want smallest mirror", d.Capacity())
	}
	e.Spawn("r", func(p *sim.Proc) {
		if err := d.Access(p, Request{Offset: 1 << 20, Size: 1}); err == nil {
			t.Error("out-of-capacity read accepted")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Stats().Errors != 1 {
		t.Fatalf("errors = %d", d.Stats().Errors)
	}
}
