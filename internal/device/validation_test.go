package device

// Validation tests: the device models against closed-form expectations,
// so a refactor cannot silently bend the physics the experiments lean on.

import (
	"math"
	"testing"

	"bps/internal/sim"
)

// TestHDDStreamingRateMatchesOuterZone: a long sequential read at offset
// 0 must deliver ≈ OuterRate once per-request overheads are amortized.
func TestHDDStreamingRateMatchesOuterZone(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultHDD()
	d := NewHDD(e, cfg)
	const total = 1 << 30
	const req = 8 << 20
	e.Spawn("r", func(p *sim.Proc) {
		for off := int64(0); off < total; off += req {
			if err := d.Access(p, Request{Offset: off, Size: req}); err != nil {
				t.Error(err)
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rate := float64(total) / e.Now().Seconds()
	if math.Abs(rate-cfg.OuterRate)/cfg.OuterRate > 0.02 {
		t.Fatalf("streaming rate %.1f MB/s, want ≈ %.1f MB/s", rate/1e6, cfg.OuterRate/1e6)
	}
}

// TestHDDRandomIOPSMatchesSeekModel: random 4 KiB reads are bounded by
// overhead + seek + expected half-rotation + transfer; the measured IOPS
// must sit near the model's prediction.
func TestHDDRandomIOPSMatchesSeekModel(t *testing.T) {
	e := sim.NewEngine(9)
	cfg := DefaultHDD()
	d := NewHDD(e, cfg)
	const n = 2000
	rng := e.Rand()
	offsets := make([]int64, n)
	for i := range offsets {
		offsets[i] = rng.Int63n(cfg.Capacity-4096) / 512 * 512
	}
	e.Spawn("r", func(p *sim.Proc) {
		for _, off := range offsets {
			if err := d.Access(p, Request{Offset: off, Size: 4096}); err != nil {
				t.Error(err)
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	iops := n / e.Now().Seconds()

	// Model: overhead + E[seek] + half rotation + transfer. The seek
	// curve's expected sqrt factor over uniform distances is E[sqrt(U)]
	// with U the distance fraction; for uniform offsets the mean distance
	// fraction is 1/3 and E[sqrt] ≈ 0.54, so use the curve at the mean.
	rot := 60.0 / cfg.RPM / 2
	seek := cfg.SettleTime.Seconds() +
		0.54*(cfg.SeekMax-cfg.SettleTime).Seconds()
	per := cfg.CommandOverhead.Seconds() + seek + rot + 4096/cfg.OuterRate
	want := 1 / per
	if iops < want*0.7 || iops > want*1.3 {
		t.Fatalf("random 4K IOPS = %.0f, model predicts ≈ %.0f", iops, want)
	}
	// Sanity: a 7200 RPM disk does on the order of 100 random IOPS.
	if iops < 50 || iops > 250 {
		t.Fatalf("random 4K IOPS = %.0f, outside any plausible HDD range", iops)
	}
}

// TestSSDSequentialRateMatchesChannels: large reads must deliver ≈
// Channels × ChannelRate.
func TestSSDSequentialRateMatchesChannels(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultSSD()
	d := NewSSD(e, cfg)
	const total = 4 << 30
	const req = 8 << 20
	e.Spawn("r", func(p *sim.Proc) {
		for off := int64(0); off < total; off += req {
			if err := d.Access(p, Request{Offset: off, Size: req}); err != nil {
				t.Error(err)
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rate := float64(total) / e.Now().Seconds()
	want := float64(cfg.Channels) * cfg.ChannelRate
	if math.Abs(rate-want)/want > 0.05 {
		t.Fatalf("sequential rate %.0f MB/s, want ≈ %.0f MB/s", rate/1e6, want/1e6)
	}
}

// TestSSDRandom4KLatencyMatchesModel: QD1 random 4 KiB reads cost
// overhead + read latency + one-channel transfer.
func TestSSDRandom4KLatencyMatchesModel(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultSSD()
	d := NewSSD(e, cfg)
	const n = 1000
	e.Spawn("r", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			off := int64(i*7919%100000) * 4096
			if err := d.Access(p, Request{Offset: off, Size: 4096}); err != nil {
				t.Error(err)
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	per := e.Now().Seconds() / n
	want := (cfg.CommandOverhead + cfg.ReadLatency).Seconds() + 4096/cfg.ChannelRate
	if math.Abs(per-want)/want > 0.01 {
		t.Fatalf("per-op %.1f µs, model %.1f µs", per*1e6, want*1e6)
	}
}
