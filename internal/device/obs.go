package device

import (
	"bps/internal/obs"
	"bps/internal/sim"
)

// instruments bundles one device's observability handles. The zero value
// (and any instruments built on an unobserved engine) is inert: every
// handle is nil and nil-safe, so Access paths call them unconditionally.
type instruments struct {
	o    *obs.Observer
	name string

	svcNS        *obs.Histogram // per-request service time, ns
	reqBytes     *obs.Histogram // per-request size, bytes
	bytesRead    *obs.Counter
	bytesWritten *obs.Counter
	errors       *obs.Counter

	spanRead, spanWrite string // precomputed span names
}

// newInstruments registers the device's metrics and (when res is
// non-nil) utilization/queue-depth probes derived from its admission
// resource.
func newInstruments(e *sim.Engine, name string, res *sim.Resource) instruments {
	o := obs.Get(e)
	reg := o.Registry()
	base := "device/" + name + "/"
	ins := instruments{
		o:            o,
		name:         name,
		svcNS:        reg.Histogram(base + "service_ns"),
		reqBytes:     reg.Histogram(base + "request_bytes"),
		bytesRead:    reg.Counter(base + "bytes_read"),
		bytesWritten: reg.Counter(base + "bytes_written"),
		errors:       reg.Counter(base + "errors"),
		spanRead:     name + " read",
		spanWrite:    name + " write",
	}
	if res != nil && reg != nil {
		reg.Probe(base+"utilization", func() float64 { return res.Utilization(e.Now()) })
		reg.Probe(base+"queue_depth", func() float64 { return float64(res.QueueLen()) })
	}
	return ins
}

// begin opens a device-layer span for req in p's timeline; the returned
// span is inert when tracing is off.
func (ins *instruments) begin(p *sim.Proc, req Request) obs.Span {
	if !ins.o.Spanning() {
		return obs.Span{}
	}
	name := ins.spanRead
	if req.Write {
		name = ins.spanWrite
	}
	var args map[string]any
	if ins.o.Tracing() {
		args = map[string]any{"offset": req.Offset, "size": req.Size}
	}
	return ins.o.Begin(p, "device", name, args)
}

// done records the completed request's metrics: service duration
// (queueing excluded) and moved bytes.
func (ins *instruments) done(req Request, svc sim.Time) {
	ins.svcNS.Observe(int64(svc))
	ins.reqBytes.Observe(req.Size)
	if req.Write {
		ins.bytesWritten.Add(req.Size)
	} else {
		ins.bytesRead.Add(req.Size)
	}
}
