package device

import (
	"fmt"

	"bps/internal/sim"
)

// RAID0 stripes requests across member devices: chunks land on member
// (chunkIndex mod n) and are serviced in parallel, so large requests
// approach n× a single member's throughput.
type RAID0 struct {
	eng     *sim.Engine
	name    string
	members []Device
	stripe  int64
	stats   Stats
}

// NewRAID0 composes members (≥ 1) with the given stripe size.
func NewRAID0(e *sim.Engine, name string, members []Device, stripe int64) *RAID0 {
	if len(members) == 0 {
		panic("device: RAID0 needs at least one member")
	}
	if stripe <= 0 {
		panic("device: RAID0 stripe must be positive")
	}
	return &RAID0{eng: e, name: name, members: members, stripe: stripe}
}

// Name implements Device.
func (d *RAID0) Name() string { return d.name }

// Capacity implements Device: n × the smallest member (striping cannot
// address past the smallest member's extent).
func (d *RAID0) Capacity() int64 {
	smallest := d.members[0].Capacity()
	for _, m := range d.members[1:] {
		if c := m.Capacity(); c < smallest {
			smallest = c
		}
	}
	return smallest * int64(len(d.members))
}

// Stats implements Device.
func (d *RAID0) Stats() Stats { return d.stats }

// BusyTime implements Device: the maximum member busy time, i.e. the
// busiest spindle.
func (d *RAID0) BusyTime() sim.Time {
	var busy sim.Time
	for _, m := range d.members {
		if b := m.BusyTime(); b > busy {
			busy = b
		}
	}
	return busy
}

// memberChunk is one contiguous piece of a striped request.
type memberChunk struct {
	member int
	req    Request
}

// split maps a request onto member-local requests, coalescing stripes
// that land contiguously on the same member (consecutive stripes of one
// member are adjacent locally, so a large request yields one chunk per
// member).
func (d *RAID0) split(req Request) []memberChunk {
	n := int64(len(d.members))
	var out []memberChunk
	lastOf := make([]int, len(d.members))
	for i := range lastOf {
		lastOf[i] = -1
	}
	off, size := req.Offset, req.Size
	for size > 0 {
		stripeIdx := off / d.stripe
		within := off % d.stripe
		run := d.stripe - within
		if run > size {
			run = size
		}
		member := int(stripeIdx % n)
		local := (stripeIdx/n)*d.stripe + within
		if li := lastOf[member]; li >= 0 && out[li].req.End() == local {
			out[li].req.Size += run
		} else {
			out = append(out, memberChunk{
				member: member,
				req:    Request{Offset: local, Size: run, Write: req.Write},
			})
			lastOf[member] = len(out) - 1
		}
		off += run
		size -= run
	}
	return out
}

// Access implements Device: member chunks are issued in parallel and the
// request completes when the slowest member finishes. A member error
// fails the whole request (after all members finish, as a real
// controller would report).
func (d *RAID0) Access(p *sim.Proc, req Request) error {
	if err := req.Validate(d.Capacity()); err != nil {
		d.stats.Errors++
		return err
	}
	chunks := d.split(req)
	err := d.parallel(p, chunks)
	if err != nil {
		d.stats.Errors++
		return err
	}
	d.account(req)
	return nil
}

// parallel issues chunks concurrently and waits for all of them.
func (d *RAID0) parallel(p *sim.Proc, chunks []memberChunk) error {
	if len(chunks) == 1 {
		return d.members[chunks[0].member].Access(p, chunks[0].req)
	}
	futures := make([]*sim.Future, len(chunks))
	errs := make([]error, len(chunks))
	for i, ch := range chunks {
		i, ch := i, ch
		futures[i] = d.eng.NewFuture()
		d.eng.Spawn(fmt.Sprintf("%s.m%d", d.name, ch.member), func(sub *sim.Proc) {
			errs[i] = d.members[ch.member].Access(sub, ch.req)
			futures[i].Complete()
		})
	}
	sim.WaitAll(p, futures...)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (d *RAID0) account(req Request) {
	if req.Write {
		d.stats.Writes++
		d.stats.BytesWritten += req.Size
	} else {
		d.stats.Reads++
		d.stats.BytesRead += req.Size
	}
}

// RAID1 mirrors member devices: writes go to every member in parallel
// (completing with the slowest), reads are balanced round-robin across
// members, so concurrent readers scale while writers pay the slowest
// mirror.
type RAID1 struct {
	eng     *sim.Engine
	name    string
	members []Device
	next    int
	stats   Stats
}

// NewRAID1 composes mirrored members (≥ 2).
func NewRAID1(e *sim.Engine, name string, members []Device) *RAID1 {
	if len(members) < 2 {
		panic("device: RAID1 needs at least two members")
	}
	return &RAID1{eng: e, name: name, members: members}
}

// Name implements Device.
func (d *RAID1) Name() string { return d.name }

// Capacity implements Device: the smallest mirror.
func (d *RAID1) Capacity() int64 {
	smallest := d.members[0].Capacity()
	for _, m := range d.members[1:] {
		if c := m.Capacity(); c < smallest {
			smallest = c
		}
	}
	return smallest
}

// Stats implements Device.
func (d *RAID1) Stats() Stats { return d.stats }

// BusyTime implements Device.
func (d *RAID1) BusyTime() sim.Time {
	var busy sim.Time
	for _, m := range d.members {
		if b := m.BusyTime(); b > busy {
			busy = b
		}
	}
	return busy
}

// Access implements Device.
func (d *RAID1) Access(p *sim.Proc, req Request) error {
	if err := req.Validate(d.Capacity()); err != nil {
		d.stats.Errors++
		return err
	}
	if !req.Write {
		member := d.members[d.next]
		d.next = (d.next + 1) % len(d.members)
		if err := member.Access(p, req); err != nil {
			d.stats.Errors++
			return err
		}
		d.stats.Reads++
		d.stats.BytesRead += req.Size
		return nil
	}
	futures := make([]*sim.Future, len(d.members))
	errs := make([]error, len(d.members))
	for i, m := range d.members {
		i, m := i, m
		futures[i] = d.eng.NewFuture()
		d.eng.Spawn(fmt.Sprintf("%s.m%d", d.name, i), func(sub *sim.Proc) {
			errs[i] = m.Access(sub, req)
			futures[i].Complete()
		})
	}
	sim.WaitAll(p, futures...)
	for _, err := range errs {
		if err != nil {
			d.stats.Errors++
			return err
		}
	}
	d.stats.Writes++
	d.stats.BytesWritten += req.Size
	return nil
}
