package device

import (
	"fmt"

	"bps/internal/sim"
)

// SchedPolicy selects the request-ordering discipline of a Scheduler.
type SchedPolicy int

// Scheduling policies.
const (
	// FCFS serves requests strictly in arrival order.
	FCFS SchedPolicy = iota

	// SSTF serves the pending request with the shortest seek distance
	// from the current head position (can starve edge requests).
	SSTF

	// SCAN is the classic elevator: the head sweeps upward serving
	// requests in offset order, then reverses.
	SCAN
)

// String implements fmt.Stringer.
func (p SchedPolicy) String() string {
	switch p {
	case FCFS:
		return "fcfs"
	case SSTF:
		return "sstf"
	case SCAN:
		return "scan"
	default:
		return fmt.Sprintf("SchedPolicy(%d)", int(p))
	}
}

// Scheduler wraps a device with an I/O scheduler: concurrent requests
// queue in the scheduler and a dispatcher process forwards them to the
// device one at a time in policy order. It models a block-layer elevator
// in front of a single-spindle disk; wrapping a parallel device (SSD,
// RAID) serializes it, which is occasionally what you want to measure.
type Scheduler struct {
	eng    *sim.Engine
	inner  Device
	policy SchedPolicy

	arrivals *sim.Queue
	pending  []*schedReq
	headPos  int64
	upward   bool

	dispatched uint64
}

// schedReq is one queued request with its completion.
type schedReq struct {
	req  Request
	done *sim.Future
	err  error
}

// NewScheduler wraps inner with the given policy and starts the
// dispatcher daemon.
func NewScheduler(e *sim.Engine, inner Device, policy SchedPolicy) *Scheduler {
	s := &Scheduler{
		eng:      e,
		inner:    inner,
		policy:   policy,
		arrivals: e.NewQueue(),
		upward:   true,
	}
	e.SpawnDaemon(inner.Name()+"."+policy.String(), s.dispatch)
	return s
}

// Name implements Device.
func (s *Scheduler) Name() string { return s.inner.Name() + "+" + s.policy.String() }

// Capacity implements Device.
func (s *Scheduler) Capacity() int64 { return s.inner.Capacity() }

// Stats implements Device.
func (s *Scheduler) Stats() Stats { return s.inner.Stats() }

// BusyTime implements Device.
func (s *Scheduler) BusyTime() sim.Time { return s.inner.BusyTime() }

// QueueLen returns the number of requests waiting in the scheduler.
func (s *Scheduler) QueueLen() int { return len(s.pending) + s.arrivals.Len() }

// Dispatched returns the number of requests forwarded to the device.
func (s *Scheduler) Dispatched() uint64 { return s.dispatched }

// Access implements Device: the request is queued and the caller parks
// until the dispatcher has serviced it.
func (s *Scheduler) Access(p *sim.Proc, req Request) error {
	sr := &schedReq{req: req, done: s.eng.NewFuture()}
	s.arrivals.Put(sr)
	sr.done.Wait(p)
	return sr.err
}

// dispatch is the scheduler daemon: it batches arrivals and serves one
// pending request per iteration in policy order.
func (s *Scheduler) dispatch(p *sim.Proc) {
	for {
		// Admit arrivals; block only when there is nothing to do at all.
		for s.arrivals.Len() > 0 || len(s.pending) == 0 {
			sr := s.arrivals.Get(p).(*schedReq)
			s.pending = append(s.pending, sr)
			if s.arrivals.Len() == 0 {
				break
			}
		}
		idx := s.pick()
		sr := s.pending[idx]
		s.pending = append(s.pending[:idx], s.pending[idx+1:]...)

		sr.err = s.inner.Access(p, sr.req)
		s.headPos = sr.req.End()
		s.dispatched++
		sr.done.Complete()
	}
}

// pick returns the index of the next request per the policy.
func (s *Scheduler) pick() int {
	switch s.policy {
	case SSTF:
		return s.pickSSTF()
	case SCAN:
		return s.pickSCAN()
	default:
		return 0
	}
}

func (s *Scheduler) pickSSTF() int {
	best, bestDist := 0, int64(-1)
	for i, sr := range s.pending {
		d := sr.req.Offset - s.headPos
		if d < 0 {
			d = -d
		}
		if bestDist < 0 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

func (s *Scheduler) pickSCAN() int {
	// Nearest request at or beyond the head in the sweep direction; if
	// none remains, reverse and retry.
	for attempt := 0; attempt < 2; attempt++ {
		best := -1
		var bestKey int64
		for i, sr := range s.pending {
			var ahead bool
			var key int64
			if s.upward {
				ahead = sr.req.Offset >= s.headPos
				key = sr.req.Offset
			} else {
				ahead = sr.req.Offset <= s.headPos
				key = -sr.req.Offset
			}
			if !ahead {
				continue
			}
			if best < 0 || key < bestKey {
				best, bestKey = i, key
			}
		}
		if best >= 0 {
			return best
		}
		s.upward = !s.upward
	}
	return 0 // unreachable with a non-empty pending list, but stay safe
}
