# Convenience targets mirroring the CI pipeline.

.PHONY: all vet build test race bench bench-all bench-smoke faults ci

all: ci

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# bench runs the engine micro- and macro-benchmarks and records them as
# test2json lines in BENCH_sim.json (the committed perf baseline), then
# echoes the human-readable Benchmark lines.
bench:
	go test -run '^$$' -bench . -benchmem -json ./internal/sim/... > BENCH_sim.json
	@grep -o '"Output":"[^"]*"' BENCH_sim.json | sed -e 's/^"Output":"//' -e 's/"$$//' \
		| tr -d '\n' | sed -e 's/\\n/\n/g' -e 's/\\t/\t/g' | grep -E '^Benchmark.*ns/op'

# bench-all sweeps every package's benchmarks without recording.
bench-all:
	go test -run '^$$' -bench . -benchmem ./...

# bench-smoke runs each benchmark once — the CI guard that they compile
# and execute.
bench-smoke:
	go test -run '^$$' -bench . -benchtime=1x ./internal/sim/...

# faults runs the FaultSweep smoke matrix: one healthy rate and one
# degraded rate at tiny scale, enough to exercise injection at every
# layer plus the client recovery path end to end.
faults:
	go run ./cmd/bpsbench -faults -scale 0.002 -fault-rates 0,0.016 -q
	go run ./cmd/bpsbench -faults -scale 0.002 -fault-rates 0,0.064 -q

ci: vet build race bench-smoke
