# Convenience targets mirroring the CI pipeline.

.PHONY: all vet staticcheck build test race cover bench bench-all bench-smoke bench-check faults clientcache shardscale attrib live qos livefs suite ci

all: ci

vet:
	go vet ./...

# staticcheck runs when the binary is installed (CI installs it; locally
# it is optional).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# cover writes the coverage profile CI uploads as an artifact and prints
# the per-function summary.
cover:
	go test -coverprofile=coverage.out ./...
	go tool cover -func=coverage.out | tail -n 1

# bench runs the engine micro- and macro-benchmarks — including the
# env-gated shard-scaling macro (BenchmarkShardScaling/w{1,2,4,8}) —
# and records them as test2json lines in BENCH_sim.json (the committed
# perf baseline), then echoes the human-readable Benchmark lines.
bench:
	BPS_SHARD_BENCH=1 go test -run '^$$' -bench . -benchmem -json -timeout 30m ./internal/sim/... ./internal/qos ./internal/stats ./internal/roofline ./cmd/bpsd > BENCH_sim.json
	@grep -o '"Output":"[^"]*"' BENCH_sim.json | sed -e 's/^"Output":"//' -e 's/"$$//' \
		| tr -d '\n' | sed -e 's/\\n/\n/g' -e 's/\\t/\t/g' | grep -E '^Benchmark.*ns/op'

# bench-all sweeps every package's benchmarks without recording. The
# long shard-scaling macro stays skipped here (it takes seconds per
# pass); run it explicitly with
#   BPS_SHARD_BENCH=1 go test -run '^$$' -bench ShardScaling -benchtime=1x ./internal/sim
bench-all:
	go test -run '^$$' -bench . -benchmem ./...

# bench-smoke runs each benchmark once — the CI guard that they compile
# and execute.
bench-smoke:
	go test -run '^$$' -bench . -benchtime=1x ./internal/sim/... ./internal/qos ./internal/stats ./internal/roofline ./cmd/bpsd

# bench-check is the bench-regression guard: rerun the engine
# benchmarks and fail if the dispatch hot path regresses more than 20%
# against the committed BENCH_sim.json. The fresh numbers land in
# BENCH_new.json (never the baseline — regenerate that with `make
# bench` after an intended change).
bench-check:
	go run ./cmd/benchguard

# live is the observability smoke: start bpsd replaying the sample
# Darshan log with the streaming endpoints on, then assert /metrics and
# /windows serve non-empty live data.
live:
	go build -o bpsd.smoke ./cmd/bpsd
	./bpsd.smoke -addr 127.0.0.1:18099 testdata/darshan_sample.csv & \
	pid=$$!; \
	ok=1; \
	for i in $$(seq 1 50); do \
		if curl -sf http://127.0.0.1:18099/windows >/dev/null 2>&1; then ok=0; break; fi; \
		sleep 0.1; \
	done; \
	if [ $$ok -ne 0 ]; then echo "live: bpsd never served"; kill $$pid; rm -f bpsd.smoke; exit 1; fi; \
	metrics=$$(curl -sf http://127.0.0.1:18099/metrics); \
	windows=$$(curl -sf http://127.0.0.1:18099/windows); \
	kill $$pid; rm -f bpsd.smoke; \
	echo "$$metrics" | grep -q '^bps_window_bps' || { echo "live: /metrics missing bps_window_bps"; exit 1; }; \
	echo "$$windows" | grep -q '"windows":\[{' || { echo "live: /windows empty"; exit 1; }; \
	echo "live smoke OK"

# qos is the multi-tenant QoS smoke: start bpsd with the jobs API,
# submit a protected tenant (unmeetable floor, so the controller must
# act) plus an interfering one into one batch window, assert both
# finish with the throttle activated and /healthz OK, then SIGTERM and
# require a clean drain (exit 0).
qos:
	go build -o bpsd.smoke ./cmd/bpsd
	./bpsd.smoke -addr 127.0.0.1:18098 -procs 2 -mb 8 -batch-wait 500ms & \
	pid=$$!; \
	ok=1; \
	for i in $$(seq 1 50); do \
		if curl -sf http://127.0.0.1:18098/healthz >/dev/null 2>&1; then ok=0; break; fi; \
		sleep 0.1; \
	done; \
	if [ $$ok -ne 0 ]; then echo "qos: bpsd never served"; kill $$pid; rm -f bpsd.smoke; exit 1; fi; \
	curl -sf -X POST -d '{"tenant":"alpha","priority":1,"bps_floor":1e8,"procs":2,"mb":4}' http://127.0.0.1:18098/jobs >/dev/null \
		|| { echo "qos: submitting alpha failed"; kill $$pid; rm -f bpsd.smoke; exit 1; }; \
	curl -sf -X POST -d '{"tenant":"beta","procs":2,"mb":1,"record_bytes":4096}' http://127.0.0.1:18098/jobs >/dev/null \
		|| { echo "qos: submitting beta failed"; kill $$pid; rm -f bpsd.smoke; exit 1; }; \
	ok=1; \
	for i in $$(seq 1 100); do \
		if curl -sf http://127.0.0.1:18098/jobs/1 | grep -q '"state":"done"' \
			&& curl -sf http://127.0.0.1:18098/jobs/2 | grep -q '"state":"done"'; then ok=0; break; fi; \
		sleep 0.1; \
	done; \
	if [ $$ok -ne 0 ]; then echo "qos: jobs never finished"; kill $$pid; rm -f bpsd.smoke; exit 1; fi; \
	qosrep=$$(curl -sf http://127.0.0.1:18098/qos); \
	health=$$(curl -sf http://127.0.0.1:18098/healthz); \
	echo "$$qosrep" | grep -q '"activations":[1-9]' || { echo "qos: throttle never activated: $$qosrep"; kill $$pid; rm -f bpsd.smoke; exit 1; }; \
	echo "$$health" | grep -q '"status":"ok"' || { echo "qos: unhealthy: $$health"; kill $$pid; rm -f bpsd.smoke; exit 1; }; \
	kill -TERM $$pid; \
	wait $$pid || { echo "qos: bpsd exited nonzero after SIGTERM"; rm -f bpsd.smoke; exit 1; }; \
	rm -f bpsd.smoke; \
	echo "qos smoke OK"

# faults runs the FaultSweep smoke matrix: one healthy rate and one
# degraded rate at tiny scale, enough to exercise injection at every
# layer plus the client recovery path end to end.
faults:
	go run ./cmd/bpsbench -faults -scale 0.002 -fault-rates 0,0.016 -q
	go run ./cmd/bpsbench -faults -scale 0.002 -fault-rates 0,0.064 -q

# clientcache runs the client-cache sweep smoke: BPS must diverge from
# BW as the hit rate rises (the test suite asserts it; this prints it).
clientcache:
	go run ./cmd/bpsbench -fig clientcache -scale 0.002 -q

# shardscale runs the sharded-engine headline figure at smoke scale:
# 25k/50k/100k client processes over a 1000-server cluster, one engine
# domain per client and per server, executed under conservative
# lookahead windows (-shards workers; GOMAXPROCS by default). The
# figure's numbers are bit-identical for every worker count.
shardscale:
	go run ./cmd/bpsbench -fig shardscale -scale 0.001 -q

# attrib runs the critical-path profiler on the pinned-seed fig9
# workload and diffs the blame table (plus figure) against the golden —
# any drift in the attribution sweep or the simulation shows up here.
# The folded flame-graph stacks land in attrib_fig9.folded (CI uploads
# them as an artifact). Regenerate the golden after an intended change:
#   go run ./cmd/bpsbench -fig fig9 -scale 0.002 -q -attrib-out attrib_fig9.folded > testdata/attrib_fig9.golden
attrib:
	go run ./cmd/bpsbench -fig fig9 -scale 0.002 -q -attrib-out attrib_fig9.folded > attrib_fig9.out
	diff testdata/attrib_fig9.golden attrib_fig9.out
	@rm -f attrib_fig9.out
	@echo "attrib golden OK"

# Live-backend smoke: the deterministic memfs record-size sweep must
# match its golden byte for byte, and a real-filesystem run on a temp
# directory must produce nonzero BPS and a well-formed windows CSV.
# Regenerate the golden after an intended change:
#   go run ./cmd/bpsbench -fig livemem -scale 0.002 -q > testdata/livemem.golden
livefs:
	go run ./cmd/bpsbench -fig livemem -scale 0.002 -q > livemem.out
	diff testdata/livemem.golden livemem.out
	@rm -f livemem.out
	@echo "livemem golden OK"
	dir=$$(mktemp -d) && \
	go run ./cmd/bpsbench -backend os -dir $$dir -wall \
		-live-procs 2 -live-mb 4 -live-record 65536 \
		-windows-out $$dir/windows.csv > livefs.out 2>/dev/null && \
	grep -q 'BPS: *[1-9]' livefs.out \
		|| { echo "livefs: osfs run reported no BPS"; cat livefs.out; rm -rf $$dir livefs.out; exit 1; }; \
	head -1 $$dir/windows.csv | grep -q '^start_s,end_s,ops,blocks,busy_s,bps,bw_bytes_per_s,iops,arpt_s,utilization$$' \
		|| { echo "livefs: malformed windows CSV"; head -3 $$dir/windows.csv; rm -rf $$dir livefs.out; exit 1; }; \
	test $$(wc -l < $$dir/windows.csv) -gt 1 \
		|| { echo "livefs: windows CSV has no rows"; rm -rf $$dir livefs.out; exit 1; }; \
	rm -rf $$dir livefs.out
	@echo "livefs osfs smoke OK"

# suite runs the IO500-style composite at smoke scale: 4 phases × 3
# seeds with bootstrap CIs and roofline headroom, plus the JSON
# artifact. Asserts the headroom column and the CI brackets render and
# that the JSON is well-formed.
suite:
	go run ./cmd/bpsbench -fig suite -scale 0.002 -seeds 3 -q -roofline-out suite_smoke.json > suite_smoke.out
	grep -q 'headroom' suite_smoke.out || { echo "suite: no headroom column"; cat suite_smoke.out; rm -f suite_smoke.out suite_smoke.json; exit 1; }
	grep -q '95% CI' suite_smoke.out || { echo "suite: no CI columns"; cat suite_smoke.out; rm -f suite_smoke.out suite_smoke.json; exit 1; }
	grep -q 'Composite' suite_smoke.out || { echo "suite: no composite score"; cat suite_smoke.out; rm -f suite_smoke.out suite_smoke.json; exit 1; }
	grep -q '"ceiling_bps"' suite_smoke.json || { echo "suite: JSON missing ceilings"; rm -f suite_smoke.out suite_smoke.json; exit 1; }
	@rm -f suite_smoke.out suite_smoke.json
	@echo "suite smoke OK"

ci: vet staticcheck build race bench-smoke live qos livefs suite
