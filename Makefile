# Convenience targets mirroring the CI pipeline.

.PHONY: all vet build test race bench ci

all: ci

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -run xxx -bench . ./...

ci: vet build race
