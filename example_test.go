package bps_test

import (
	"fmt"

	"bps"
)

// The paper's equation (1): BPS = B / T, where T is the overlapped I/O
// time. Two fully concurrent accesses count their time once.
func ExampleOverlapTime() {
	records := []bps.Record{
		{PID: 1, Blocks: 128, Start: 0, End: bps.Second},
		{PID: 2, Blocks: 128, Start: 0, End: bps.Second}, // concurrent with the first
		{PID: 1, Blocks: 128, Start: 2 * bps.Second, End: 3 * bps.Second},
	}
	fmt.Println("union:", bps.OverlapTime(records))
	fmt.Println("naive sum:", bps.SumTime(records))
	// Output:
	// union: 2s
	// naive sum: 3s
}

func ExampleComputeMetrics() {
	records := []bps.Record{
		{PID: 1, Blocks: 2048, Start: 0, End: bps.Second},
		{PID: 2, Blocks: 2048, Start: 0, End: bps.Second},
	}
	m := bps.ComputeMetrics(records, 4096*bps.BlockSize, bps.Second)
	fmt.Printf("B = %d blocks over T = %v\n", m.Blocks, m.IOTime)
	fmt.Printf("BPS = %.0f blocks/s\n", m.BPS())
	fmt.Printf("IOPS = %.0f, ARPT = %.1fs\n", m.IOPS(), m.ARPT())
	// Output:
	// B = 4096 blocks over T = 1s
	// BPS = 4096 blocks/s
	// IOPS = 2, ARPT = 1.0s
}

// Bandwidth counts what the file system moved; BPS counts what the
// application required. Data sieving and prefetching split the two.
func ExampleMetrics_Bandwidth() {
	records := []bps.Record{{PID: 1, Blocks: 1024, Start: 0, End: bps.Second}}
	movedWithHoles := int64(4 * 1024 * bps.BlockSize) // sieving read 4× the data
	m := bps.ComputeMetrics(records, movedWithHoles, bps.Second)
	fmt.Printf("BW counts %d bytes, BPS counts %d blocks\n", m.MovedBytes, m.Blocks)
	// Output:
	// BW counts 2097152 bytes, BPS counts 1024 blocks
}

func ExampleTimeline() {
	records := []bps.Record{
		{PID: 1, Blocks: 512, Start: 0, End: 900 * bps.Millisecond},
		// idle second window
		{PID: 1, Blocks: 256, Start: 2100 * bps.Millisecond, End: 2400 * bps.Millisecond},
	}
	points, _ := bps.Timeline(records, bps.Second)
	for _, p := range points {
		fmt.Printf("t=%v util=%.0f%% blocks=%d\n", p.Start, 100*p.Utilization(), p.Blocks)
	}
	// Output:
	// t=0ns util=90% blocks=512
	// t=1s util=0% blocks=0
	// t=2s util=30% blocks=256
}

func ExampleNormalizedCC() {
	// IOPS rising while execution time rises contradicts Table 1's
	// expected direction, so its normalized CC is negative.
	iops := []float64{1000, 2000, 3000}
	exec := []float64{10, 20, 30}
	cc := bps.Pearson(iops, exec)
	fmt.Printf("%+.0f\n", bps.NormalizedCC(cc, bps.IOPS))
	// Output:
	// -1
}

func ExampleSimulateSequentialRead() {
	rep, err := bps.SimulateSequentialRead(
		bps.RunConfig{Storage: bps.Storage{Media: bps.SSD}, Seed: 1},
		1,      // one process
		8<<20,  // 8 MiB
		64<<10, // 64 KiB records
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("ops=%d errors=%d moved=%d MiB\n",
		rep.Metrics.Ops, rep.Errors, rep.Metrics.MovedBytes>>20)
	// Output:
	// ops=128 errors=0 moved=8 MiB
}
