module bps

go 1.22
