package bps

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestFacadeMetricToolkit(t *testing.T) {
	c := NewCollector(1)
	c.Record(BlocksOf(64<<10), 0, Second)
	c.Record(BlocksOf(64<<10), Second, 2*Second)
	g := Gather(c)
	m := ComputeMetrics(g.Records(), 128<<10, 2*Second)
	if m.Ops != 2 || m.IOTime != 2*Second {
		t.Fatalf("metrics = %+v", m)
	}
	if got := m.BPS(); math.Abs(got-128) > 1e-9 {
		t.Fatalf("BPS = %v, want 128 blocks/s", got)
	}
	if OverlapTime(g.Records()) != 2*Second || SumTime(g.Records()) != 2*Second {
		t.Fatal("overlap/sum mismatch")
	}
}

func TestFacadeTraceRoundTrips(t *testing.T) {
	records := []Record{
		{PID: 1, Blocks: 128, Start: 0, End: Millisecond},
		{PID: 2, Blocks: 64, Start: Millisecond, End: 3 * Millisecond},
	}
	var bin, csv, jsonl bytes.Buffer
	if err := WriteTrace(&bin, records); err != nil {
		t.Fatal(err)
	}
	if bin.Len() != 2*RecordSize {
		t.Fatalf("binary size = %d", bin.Len())
	}
	if err := WriteTraceCSV(&csv, records); err != nil {
		t.Fatal(err)
	}
	if err := WriteTraceJSONL(&jsonl, records); err != nil {
		t.Fatal(err)
	}
	for name, read := range map[string]func() ([]Record, error){
		"binary": func() ([]Record, error) { return ReadTrace(&bin) },
		"csv":    func() ([]Record, error) { return ReadTraceCSV(&csv) },
		"jsonl":  func() ([]Record, error) { return ReadTraceJSONL(&jsonl) },
	} {
		got, err := read()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != 2 || got[0] != records[0] || got[1] != records[1] {
			t.Fatalf("%s round trip: %+v", name, got)
		}
	}
}

func TestFacadeStats(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{2, 4, 6}
	if cc := Pearson(x, y); math.Abs(cc-1) > 1e-12 {
		t.Fatalf("Pearson = %v", cc)
	}
	// BPS rising while exec time rises is the wrong direction → negative.
	if got := NormalizedCC(1, BPS); got != -1 {
		t.Fatalf("NormalizedCC(+1, BPS) = %v, want -1", got)
	}
	if got := NormalizedCC(1, ARPT); got != 1 {
		t.Fatalf("NormalizedCC(+1, ARPT) = %v, want +1", got)
	}
}

func TestSimulateSequentialReadLocal(t *testing.T) {
	rep, err := SimulateSequentialRead(RunConfig{Storage: Storage{Media: SSD}, Seed: 1},
		1, 4<<20, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || len(rep.Records) != 64 {
		t.Fatalf("report: errors=%d records=%d", rep.Errors, len(rep.Records))
	}
	if rep.Metrics.BPS() <= 0 || rep.Metrics.IOTime <= 0 {
		t.Fatalf("metrics: %+v", rep.Metrics)
	}
	// Moved equals required on a plain local read.
	if rep.Metrics.MovedBytes != 4<<20 {
		t.Fatalf("moved = %d", rep.Metrics.MovedBytes)
	}
}

func TestSimulateSequentialReadClusterModes(t *testing.T) {
	shared, err := SimulateSequentialRead(RunConfig{
		Storage: Storage{Media: HDD, Servers: 4, SharedFile: true}, Seed: 2,
	}, 4, 2<<20, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := SimulateSequentialRead(RunConfig{
		Storage: Storage{Media: HDD, Servers: 4}, Seed: 2,
	}, 4, 2<<20, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	for name, rep := range map[string]RunReport{"shared": shared, "pinned": pinned} {
		if rep.Errors != 0 {
			t.Errorf("%s: %d errors", name, rep.Errors)
		}
		// Server readahead may overshoot concurrent segment boundaries a
		// little, so moved is bounded, not exact.
		if rep.Metrics.MovedBytes < 8<<20 || rep.Metrics.MovedBytes > 10<<20 {
			t.Errorf("%s: moved %d, want within [8 MiB, 10 MiB]", name, rep.Metrics.MovedBytes)
		}
	}
}

func TestSimulateNoncontiguousReadSievingDivergesBWFromBPS(t *testing.T) {
	// Spacing must exceed the servers' 4 KiB cache-page granularity for
	// direct mode to move less than the sieving covering extent.
	cfg := RunConfig{Storage: Storage{Media: HDD, Servers: 2}, Seed: 3}
	sieve, err := SimulateNoncontiguousRead(cfg, 1, 2048, 256, 16<<10, true)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := SimulateNoncontiguousRead(cfg, 1, 2048, 256, 16<<10, false)
	if err != nil {
		t.Fatal(err)
	}
	if sieve.Metrics.MovedBytes <= direct.Metrics.MovedBytes {
		t.Fatalf("sieving moved %d, direct %d", sieve.Metrics.MovedBytes, direct.Metrics.MovedBytes)
	}
	if sieve.Metrics.Blocks != direct.Metrics.Blocks {
		t.Fatalf("required blocks differ: %d vs %d", sieve.Metrics.Blocks, direct.Metrics.Blocks)
	}
	// With sieving, FS-level bandwidth exceeds the application-level block
	// rate expressed in bytes — the paper's BW/BPS divergence.
	if sieve.Metrics.Bandwidth() <= sieve.Metrics.BPS()*BlockSize {
		t.Fatal("sieving did not lift BW above BPS×BlockSize")
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := SimulateSequentialRead(RunConfig{}, 0, 1<<20, 64<<10); err == nil {
		t.Error("procs=0 accepted")
	}
	if _, err := SimulateSequentialRead(RunConfig{}, 1, 0, 64<<10); err == nil {
		t.Error("zero bytes accepted")
	}
}

func TestSimulateDeterminism(t *testing.T) {
	cfg := RunConfig{Storage: Storage{Media: HDD, Servers: 2, SharedFile: true}, Seed: 9}
	a, err := SimulateSequentialRead(cfg, 2, 1<<20, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateSequentialRead(cfg, 2, 1<<20, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics != b.Metrics {
		t.Fatalf("nondeterministic simulate: %+v vs %+v", a.Metrics, b.Metrics)
	}
}

func TestSuiteFacade(t *testing.T) {
	s := NewSuite(ExperimentParams{Scale: 1.0 / 1024, Seed: 42})
	f, err := s.Figure("fig5")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	WriteFigure(&buf, f)
	if !strings.Contains(buf.String(), "normalized CC") {
		t.Fatalf("figure output:\n%s", buf.String())
	}
	buf.Reset()
	WriteTable1(&buf)
	WriteTable2(&buf)
	WriteSummary(&buf, []Figure{f})
	if !strings.Contains(buf.String(), "Table 1") || !strings.Contains(buf.String(), "Summary") {
		t.Fatalf("tables output:\n%s", buf.String())
	}
}

func TestTimelineFacade(t *testing.T) {
	records := []Record{
		{PID: 1, Blocks: 100, Start: 0, End: 500 * Millisecond},
		{PID: 2, Blocks: 100, Start: 1500 * Millisecond, End: 1700 * Millisecond},
	}
	pts, err := Timeline(records, Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("windows = %d", len(pts))
	}
	if pts[0].Busy != 500*Millisecond || pts[1].Busy != 200*Millisecond {
		t.Fatalf("busy: %v %v", pts[0].Busy, pts[1].Busy)
	}
	if _, err := Timeline(records, 0); err == nil {
		t.Fatal("zero window accepted")
	}
}

func TestSimulateConcurrentApps(t *testing.T) {
	combined, perApp, err := SimulateConcurrentApps(
		RunConfig{Storage: Storage{Media: SSD, Servers: 2}, Seed: 4},
		AppSpec{Name: "a", Processes: 2, BytesPerProcess: 2 << 20, RecordSize: 64 << 10},
		AppSpec{Name: "b", Processes: 1, BytesPerProcess: 1 << 20, RecordSize: 64 << 10, ComputePerOp: Millisecond},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(perApp) != 2 {
		t.Fatalf("perApp = %d", len(perApp))
	}
	// Globally unique PIDs: app a uses 0,1; app b uses 2.
	pids := uniquePIDSet(combined.Records)
	if len(pids) != 3 || !pids[0] || !pids[1] || !pids[2] {
		t.Fatalf("PIDs = %v", pids)
	}
	// Combined ops equal the sum of per-app ops.
	if combined.Metrics.Ops != perApp[0].Metrics.Ops+perApp[1].Metrics.Ops {
		t.Fatal("combined ops != sum of per-app ops")
	}
	// Combined T can never exceed the engine-wide exec time, and must be
	// at least each app's own I/O time.
	for i, rep := range perApp {
		if rep.Metrics.IOTime > combined.Metrics.ExecTime {
			t.Errorf("app %d IOTime %v > combined exec %v", i, rep.Metrics.IOTime, combined.Metrics.ExecTime)
		}
	}
	if combined.Errors != 0 {
		t.Fatalf("errors = %d", combined.Errors)
	}

	if _, _, err := SimulateConcurrentApps(RunConfig{}); err == nil {
		t.Error("no apps accepted")
	}
	if _, _, err := SimulateConcurrentApps(RunConfig{}, AppSpec{Name: "bad"}); err == nil {
		t.Error("invalid app accepted")
	}
}

func uniquePIDSet(records []Record) map[int64]bool {
	set := make(map[int64]bool)
	for _, r := range records {
		set[r.PID] = true
	}
	return set
}

func TestSimulateWithFaultInjection(t *testing.T) {
	rep, err := SimulateSequentialRead(RunConfig{
		Storage: Storage{Media: SSD, FaultEvery: 4},
		Seed:    1,
	}, 1, 1<<20, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	// 16 accesses, every 4th fails: 4 errors.
	if rep.Errors != 4 {
		t.Fatalf("errors = %d, want 4", rep.Errors)
	}
	// Failed accesses still counted in B (§III.A).
	if rep.Metrics.Blocks != BlocksOf(1<<20) {
		t.Fatalf("B = %d blocks, failed accesses dropped", rep.Metrics.Blocks)
	}
	// And they consumed device time.
	clean, err := SimulateSequentialRead(RunConfig{
		Storage: Storage{Media: SSD},
		Seed:    1,
	}, 1, 1<<20, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics.IOTime != clean.Metrics.IOTime {
		t.Fatalf("fault run IOTime %v vs clean %v: faults should cost full service",
			rep.Metrics.IOTime, clean.Metrics.IOTime)
	}
}

func TestReplayTraceOnDifferentStacks(t *testing.T) {
	// Record a trace on HDD, then replay it on SSD: the same access
	// pattern must get faster.
	orig, err := SimulateSequentialRead(RunConfig{Storage: Storage{Media: HDD}, Seed: 1},
		2, 4<<20, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := ReplayTrace(RunConfig{Storage: Storage{Media: SSD}, Seed: 1}, orig.Records)
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Errors != 0 {
		t.Fatalf("errors = %d", replayed.Errors)
	}
	if replayed.Metrics.Blocks != orig.Metrics.Blocks {
		t.Fatalf("replay changed B: %d vs %d", replayed.Metrics.Blocks, orig.Metrics.Blocks)
	}
	if replayed.Metrics.IOTime >= orig.Metrics.IOTime {
		t.Fatalf("SSD replay (%v) not faster than HDD original (%v)",
			replayed.Metrics.IOTime, orig.Metrics.IOTime)
	}
	if _, err := ReplayTrace(RunConfig{}, nil); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestReplayTraceOnCluster(t *testing.T) {
	orig, err := SimulateSequentialRead(RunConfig{Storage: Storage{Media: SSD}, Seed: 2},
		2, 2<<20, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := ReplayTrace(RunConfig{Storage: Storage{Media: HDD, Servers: 4}, Seed: 2}, orig.Records)
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Errors != 0 || replayed.Metrics.Ops != orig.Metrics.Ops {
		t.Fatalf("replay: errors=%d ops=%d vs %d", replayed.Errors, replayed.Metrics.Ops, orig.Metrics.Ops)
	}
}
