// Command iogen generates synthetic I/O traces in the BPS record format,
// for exercising bpstrace and the metric toolkit without running a
// simulation.
//
// Usage:
//
//	iogen [-pattern sequential|concurrent|bursty|random] [-ops N]
//	      [-procs P] [-size BYTES] [-service SECONDS] [-seed S]
//	      [-format binary|csv|jsonl] [-out FILE] [-layout DIR]
//
// With -layout DIR, iogen also materializes the generated workload as a
// real directory tree: one slotNNNN.dat file per process, sized to the
// bytes that process accesses, laid out exactly where a live replay
// (bpsbench -backend os -dir DIR) will look for them. Existing files
// are kept and only grown.
//
// Patterns:
//
//	sequential — each process issues back-to-back accesses, one after
//	             another (no overlap between processes)
//	concurrent — all processes issue in parallel lockstep
//	bursty     — concurrent bursts separated by idle gaps (exercises the
//	             idle-time exclusion in T)
//	random     — exponential think times and sizes around the means
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"

	"bps"
	"bps/internal/backend"
	"bps/internal/live"
	"bps/internal/workload"
)

func main() {
	pattern := flag.String("pattern", "sequential", "sequential, concurrent, bursty, or random")
	ops := flag.Int("ops", 1000, "accesses per process")
	procs := flag.Int("procs", 1, "number of processes")
	size := flag.Int64("size", 64<<10, "bytes per access")
	service := flag.Float64("service", 0.001, "seconds per access")
	seed := flag.Int64("seed", 1, "RNG seed for the random pattern")
	format := flag.String("format", "binary", "binary, csv, or jsonl")
	out := flag.String("out", "-", "output file (- for stdout)")
	layoutDir := flag.String("layout", "", "also materialize the workload as a real directory tree here (slot files for bpsbench -backend os)")
	flag.Parse()

	records, err := generate(*pattern, *ops, *procs, *size, *service, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iogen:", err)
		os.Exit(2)
	}
	if err := write(*out, *format, records); err != nil {
		fmt.Fprintln(os.Stderr, "iogen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "iogen: wrote %d records (%s, %s)\n", len(records), *pattern, *format)
	if *layoutDir != "" {
		if err := layout(*layoutDir, records); err != nil {
			fmt.Fprintln(os.Stderr, "iogen:", err)
			os.Exit(1)
		}
	}
}

// layout materializes the generated workload as a real directory tree:
// each process gets one slot file sized to the bytes it accesses, so
// bpsbench -backend os -dir DIR finds a ready dataset. Offsets advance
// sequentially within each process's slot, mirroring how the live
// driver derives extents from an access stream.
func layout(dir string, records []bps.Record) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	accs := layoutAccesses(records)
	extents, err := live.Layout(backend.NewOSFS(dir, false), accs)
	if err != nil {
		return err
	}
	var total int64
	for _, ext := range extents {
		total += ext
	}
	fmt.Fprintf(os.Stderr, "iogen: laid out %d slot file(s) under %s (%d bytes)\n", len(extents), dir, total)
	return nil
}

// layoutAccesses converts trace records (pid, blocks) into offset-aware
// accesses: one slot per process in PID order, offsets cumulative in
// record order, sizes the records' required bytes.
func layoutAccesses(records []bps.Record) []workload.Access {
	slots := make(map[int64]int)
	var pids []int64
	for _, r := range records {
		if _, ok := slots[r.PID]; !ok {
			slots[r.PID] = 0
			pids = append(pids, r.PID)
		}
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for i, pid := range pids {
		slots[pid] = i
	}
	offs := make(map[int64]int64)
	accs := make([]workload.Access, 0, len(records))
	for _, r := range records {
		n := r.Blocks * bps.BlockSize
		accs = append(accs, workload.Access{
			PID:   r.PID,
			Slot:  slots[r.PID],
			Off:   offs[r.PID],
			Size:  n,
			Start: r.Start,
		})
		offs[r.PID] += n
	}
	return accs
}

func generate(pattern string, ops, procs int, size int64, service float64, seed int64) ([]bps.Record, error) {
	if ops < 1 || procs < 1 || size < 1 || service <= 0 {
		return nil, fmt.Errorf("ops, procs, size and service must be positive")
	}
	blocks := bps.BlocksOf(size)
	svc := bps.Time(service * float64(bps.Second))
	var records []bps.Record

	switch pattern {
	case "sequential":
		t := bps.Time(0)
		for p := 0; p < procs; p++ {
			for i := 0; i < ops; i++ {
				records = append(records, bps.Record{PID: int64(p), Blocks: blocks, Start: t, End: t + svc})
				t += svc
			}
		}
	case "concurrent":
		for p := 0; p < procs; p++ {
			t := bps.Time(0)
			for i := 0; i < ops; i++ {
				records = append(records, bps.Record{PID: int64(p), Blocks: blocks, Start: t, End: t + svc})
				t += svc
			}
		}
	case "bursty":
		const burst = 10
		gap := 5 * svc
		for p := 0; p < procs; p++ {
			t := bps.Time(0)
			for i := 0; i < ops; i++ {
				if i > 0 && i%burst == 0 {
					t += gap
				}
				records = append(records, bps.Record{PID: int64(p), Blocks: blocks, Start: t, End: t + svc})
				t += svc
			}
		}
	case "random":
		rng := rand.New(rand.NewSource(seed))
		for p := 0; p < procs; p++ {
			t := bps.Time(0)
			for i := 0; i < ops; i++ {
				think := bps.Time(rng.ExpFloat64() * float64(svc))
				dur := bps.Time((0.5 + rng.Float64()) * float64(svc))
				b := bps.BlocksOf(int64((0.5 + rng.Float64()) * float64(size)))
				t += think
				records = append(records, bps.Record{PID: int64(p), Blocks: b, Start: t, End: t + dur})
				t += dur
			}
		}
	default:
		return nil, fmt.Errorf("unknown pattern %q", pattern)
	}
	return records, nil
}

func write(out, format string, records []bps.Record) error {
	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch format {
	case "binary":
		return bps.WriteTrace(w, records)
	case "csv":
		return bps.WriteTraceCSV(w, records)
	case "jsonl":
		return bps.WriteTraceJSONL(w, records)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}
