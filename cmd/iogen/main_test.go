package main

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"bps"
)

func TestGenerateSequential(t *testing.T) {
	recs, err := generate("sequential", 10, 2, 4096, 0.001, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 20 {
		t.Fatalf("records = %d", len(recs))
	}
	// Fully serialized: union equals sum.
	if bps.OverlapTime(recs) != bps.SumTime(recs) {
		t.Fatal("sequential pattern overlaps")
	}
	// Each access is 8 blocks, 1 ms.
	if recs[0].Blocks != 8 || recs[0].End-recs[0].Start != bps.Millisecond {
		t.Fatalf("first record = %+v", recs[0])
	}
}

func TestGenerateConcurrent(t *testing.T) {
	recs, err := generate("concurrent", 10, 4, 4096, 0.001, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 40 {
		t.Fatalf("records = %d", len(recs))
	}
	// Four processes in lockstep: union is one process's worth of time.
	if got := bps.OverlapTime(recs); got != 10*bps.Millisecond {
		t.Fatalf("union = %v, want 10ms", got)
	}
}

func TestGenerateBurstyHasIdleGaps(t *testing.T) {
	recs, err := generate("bursty", 30, 1, 4096, 0.001, 1)
	if err != nil {
		t.Fatal(err)
	}
	union := bps.OverlapTime(recs)
	span := recs[len(recs)-1].End - recs[0].Start
	if union >= span {
		t.Fatalf("bursty pattern has no idle gaps: union %v, span %v", union, span)
	}
}

func TestGenerateRandomDeterministic(t *testing.T) {
	a, err := generate("random", 50, 2, 4096, 0.001, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := generate("random", 50, 2, 4096, 0.001, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded random diverges at %d", i)
		}
	}
	c, err := generate("random", 50, 2, 4096, 0.001, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateValidation(t *testing.T) {
	cases := [][5]interface{}{
		{"sequential", 0, 1, int64(1), 0.1},
		{"sequential", 1, 0, int64(1), 0.1},
		{"sequential", 1, 1, int64(0), 0.1},
		{"sequential", 1, 1, int64(1), 0.0},
		{"nope", 1, 1, int64(1), 0.1},
	}
	for i, c := range cases {
		_, err := generate(c[0].(string), c[1].(int), c[2].(int), c[3].(int64), c[4].(float64), 1)
		if err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestWriteFormats(t *testing.T) {
	recs, err := generate("sequential", 5, 1, 4096, 0.001, 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, format := range []string{"binary", "csv", "jsonl"} {
		path := filepath.Join(dir, "t."+format)
		if err := write(path, format, recs); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		info, err := os.Stat(path)
		if err != nil || info.Size() == 0 {
			t.Fatalf("%s: empty or missing output", format)
		}
	}
	if err := write(filepath.Join(dir, "x"), "nope", recs); err == nil {
		t.Error("unknown format accepted")
	}
}

// TestLayoutAccesses checks the record→access conversion: one slot per
// process, cumulative offsets, sizes from required blocks.
func TestLayoutAccesses(t *testing.T) {
	records, err := generate("random", 10, 3, 4096, 0.001, 1)
	if err != nil {
		t.Fatal(err)
	}
	accs := layoutAccesses(records)
	if len(accs) != len(records) {
		t.Fatalf("%d accesses from %d records", len(accs), len(records))
	}
	off := map[int64]int64{}
	for i, a := range accs {
		if a.Slot != int(a.PID) {
			t.Fatalf("access %d: slot %d for pid %d", i, a.Slot, a.PID)
		}
		if a.Off != off[a.PID] {
			t.Fatalf("access %d: offset %d, want cumulative %d", i, a.Off, off[a.PID])
		}
		if want := records[i].Blocks * bps.BlockSize; a.Size != want {
			t.Fatalf("access %d: size %d, want %d", i, a.Size, want)
		}
		off[a.PID] += a.Size
	}
}

// TestLayoutMaterializes checks -layout end to end: slot files exist on
// disk with the per-process extents, and re-laying out is idempotent.
func TestLayoutMaterializes(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	records, err := generate("sequential", 5, 2, 8192, 0.001, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := layout(dir, records); err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 2; slot++ {
		fi, err := os.Stat(filepath.Join(dir, fmt.Sprintf("slot%04d.dat", slot)))
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(5 * 8192); fi.Size() != want {
			t.Fatalf("slot %d: size %d, want %d", slot, fi.Size(), want)
		}
	}
	if err := layout(dir, records); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineIntoMetrics closes the loop: generated traces produce
// sensible metrics.
func TestPipelineIntoMetrics(t *testing.T) {
	recs, err := generate("concurrent", 100, 4, 64<<10, 0.002, 1)
	if err != nil {
		t.Fatal(err)
	}
	var required int64
	for _, r := range recs {
		required += r.Blocks * bps.BlockSize
	}
	m := bps.ComputeMetrics(recs, required, bps.OverlapTime(recs))
	// 4-way concurrency: IOPS over union is 4× a single stream's rate.
	if m.IOPS() < 1999 || m.IOPS() > 2001 {
		t.Fatalf("IOPS = %v, want 2000", m.IOPS())
	}
}
