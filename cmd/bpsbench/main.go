// Command bpsbench regenerates the BPS paper's evaluation: every table
// and figure of §IV, at a configurable fraction of the paper's data
// volume.
//
// Usage:
//
//	bpsbench [-fig all|table1|table2|fig4|...|fig12|faults|clientcache|shardscale] [-scale 0.015625] [-seed 42] [-parallel N] [-shards N]
//	bpsbench -faults [-fault-rates 0,0.004,0.016]
//	bpsbench -fig clientcache
//	bpsbench -fig shardscale
//
// The output for a CC figure is the per-run measurement table followed by
// the normalized correlation coefficient of each metric against
// application execution time — the figure's bar values. Detail figures
// print the metric/execution-time series the paper plots.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"bps/internal/experiments"
	"bps/internal/obs"
	"bps/internal/obs/forecast"
	"bps/internal/obs/serve"
	"bps/internal/report"
	"bps/internal/sim"
)

func main() {
	fig := flag.String("fig", "all", "what to reproduce: all, table1, table2, fig4..fig12, ext1..ext3, faults, clientcache, shardscale, or qos")
	scale := flag.Float64("scale", 1.0/64, "fraction of the paper's data sizes (1.0 = full scale)")
	seed := flag.Int64("seed", 42, "base RNG seed")
	parallel := flag.Int("parallel", runtime.NumCPU(), "worker goroutines for sweep runs (results are identical for any value)")
	shards := flag.Int("shards", 0, "engine shard workers per run: 0 = classic single-calendar engine, N = sharded engine with N workers, -1 = GOMAXPROCS; the shardscale figure is always sharded and defaults to GOMAXPROCS")
	quiet := flag.Bool("q", false, "suppress timing chatter")
	asCSV := flag.Bool("csv", false, "emit per-run rows (and cc rows) as CSV instead of tables")
	seeds := flag.Int("seeds", 0, "robustness mode: rerun the figure under N seeds and report CC ranges")
	traceOut := flag.String("trace-out", "", "write the last reproduced run as Chrome trace-event JSON here")
	metricsOut := flag.String("metrics-out", "", "write the last reproduced run's per-layer metrics as CSV here")
	faultsFig := flag.Bool("faults", false, "shortcut for -fig faults: the BPS-under-degradation FaultSweep")
	faultRates := flag.String("fault-rates", "", "comma-separated fault rates for the FaultSweep x-axis (default 0,0.001,0.004,0.016,0.064)")
	attribOut := flag.String("attrib-out", "", "run the critical-path profiler, print the per-layer blame table, and write folded flame-graph stacks here")
	windows := flag.Float64("windows", 0, "streaming windowed estimator width in seconds (0 = off); prints the per-window BPS/IOPS/BW/ARPT series")
	serveAddr := flag.String("serve", "", "serve live observability on this address while runs execute (/metrics /windows /forecast /stream); forces -parallel 1 and defaults -windows to 0.01")
	forecastOut := flag.Bool("forecast", false, "run the online burst forecaster over the last run's window series and print per-window forecasts and alerts (needs -windows)")
	flag.Parse()

	if *faultsFig {
		*fig = experiments.FaultFigureID
	}
	rates, err := parseRates(*faultRates)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bpsbench: -fault-rates:", err)
		os.Exit(1)
	}

	if *serveAddr != "" && *windows == 0 {
		*windows = 0.01
	}
	if *forecastOut && *windows == 0 {
		fmt.Fprintln(os.Stderr, "bpsbench: -forecast needs -windows (the forecaster consumes the window series)")
		os.Exit(1)
	}
	if *serveAddr != "" {
		// One publisher serves the whole sweep; runs must tick it
		// sequentially, so the sweep cannot fan out.
		*parallel = 1
	}

	if *shards < 0 {
		*shards = runtime.GOMAXPROCS(0)
	}
	params := experiments.Params{Scale: *scale, Seed: *seed, Parallel: *parallel, FaultRates: rates, Shards: *shards}

	if *seeds > 0 {
		r, err := experiments.RunRobustness(params, *fig, *seeds)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bpsbench:", err)
			os.Exit(1)
		}
		fmt.Print(r)
		return
	}

	suite := experiments.NewSuite(params)
	if *traceOut != "" || *metricsOut != "" || *attribOut != "" || *windows > 0 || *serveAddr != "" {
		opts := &obs.Options{
			ChromeTrace: *traceOut != "",
			SampleEvery: sim.Millisecond,
			Attribution: *attribOut != "",
			WindowEvery: sim.Time(*windows * float64(sim.Second)),
		}
		if *serveAddr != "" {
			pub := serve.NewPublisher("bpsbench -fig "+*fig, forecast.Config{})
			srv, err := serve.Start(*serveAddr, pub)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bpsbench:", err)
				os.Exit(1)
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "[serving live observability on http://%s]\n", srv.Addr())
			opts.Tick = pub.Hook()
		}
		suite.SetObserve(opts)
	}

	if *asCSV {
		err = runCSV(suite, *fig, *quiet)
	} else {
		err = run(suite, *fig, *quiet)
	}
	if err == nil {
		err = writeObservation(suite, *traceOut, *metricsOut, *attribOut, *windows > 0, *forecastOut)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bpsbench:", err)
		os.Exit(1)
	}
}

// parseRates parses a comma-separated -fault-rates list; "" means nil
// (use the experiment's defaults).
func parseRates(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	rates := make([]float64, 0, len(parts))
	for _, p := range parts {
		r, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		if r < 0 || r > 1 {
			return nil, fmt.Errorf("rate %g out of [0,1]", r)
		}
		rates = append(rates, r)
	}
	return rates, nil
}

// writeObservation exports the last instrumented run's Chrome trace,
// per-layer metrics CSV, attribution report (blame table plus windowed
// series on stdout, folded stacks to attribOut), and/or burst forecast.
func writeObservation(suite *experiments.Suite, traceOut, metricsOut, attribOut string, windows, forecastOut bool) error {
	if traceOut == "" && metricsOut == "" && attribOut == "" && !windows && !forecastOut {
		return nil
	}
	last := suite.LastObservation()
	if last == nil {
		return fmt.Errorf("-trace-out/-metrics-out/-attrib-out/-windows: no run was reproduced (tables only?)")
	}
	write := func(name string, fn func(io.Writer) error) error {
		f, err := os.Create(name)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", name, err)
		}
		return f.Close()
	}
	if traceOut != "" {
		if err := write(traceOut, last.Obs.WriteChromeTrace); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "[wrote Chrome trace of run %q to %s]\n", last.Label, traceOut)
	}
	if metricsOut != "" {
		if err := write(metricsOut, func(f io.Writer) error {
			return report.WriteObsCSV(f, last.Obs.Registry())
		}); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "[wrote per-layer metrics of run %q to %s]\n", last.Label, metricsOut)
	}
	if attribOut != "" || windows {
		rep := last.Obs.Attribution()
		report.WriteAttribution(os.Stdout, rep)
		if attribOut != "" {
			if err := write(attribOut, rep.WriteFolded); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "[wrote folded stacks of run %q to %s]\n", last.Label, attribOut)
		}
	}
	if forecastOut {
		report.WriteForecast(os.Stdout, last.Obs.Attribution(), forecast.Config{})
	}
	return nil
}

func run(suite *experiments.Suite, fig string, quiet bool) error {
	out := os.Stdout

	switch fig {
	case "table1":
		report.WriteTable1(out)
		return nil
	case "table2":
		report.WriteTable2(out)
		return nil
	case "all":
		report.WriteTable1(out)
		report.WriteTable2(out)
		var figs []experiments.Figure
		for _, id := range experiments.FigureIDs {
			f, err := timed(suite, id, quiet)
			if err != nil {
				return err
			}
			report.WriteFigure(out, f)
			figs = append(figs, f)
		}
		report.WriteSummary(out, figs)
		report.WriteComparison(out, figs)
		for _, id := range experiments.ExtensionIDs {
			f, err := timed(suite, id, quiet)
			if err != nil {
				return err
			}
			report.WriteFigure(out, f)
		}
		return nil
	case experiments.FaultFigureID:
		f, err := timed(suite, fig, quiet)
		if err != nil {
			return err
		}
		report.WriteFaultFigure(out, f)
		return nil
	case experiments.ClientCacheFigureID:
		f, err := timed(suite, fig, quiet)
		if err != nil {
			return err
		}
		report.WriteClientCacheFigure(out, f)
		return nil
	case experiments.QoSFigureID:
		f, err := timed(suite, fig, quiet)
		if err != nil {
			return err
		}
		report.WriteQoSFigure(out, f)
		return nil
	default:
		f, err := timed(suite, fig, quiet)
		if err != nil {
			return err
		}
		report.WriteFigure(out, f)
		return nil
	}
}

// runCSV emits machine-readable rows for one figure (or every figure
// when fig is "all").
func runCSV(suite *experiments.Suite, fig string, quiet bool) error {
	ids := []string{fig}
	if fig == "all" {
		ids = append(append([]string{}, experiments.FigureIDs...), experiments.ExtensionIDs...)
	}
	for _, id := range ids {
		f, err := timed(suite, id, quiet)
		if err != nil {
			return err
		}
		if err := report.WriteFigureCSV(os.Stdout, f); err != nil {
			return err
		}
	}
	return nil
}

func timed(suite *experiments.Suite, id string, quiet bool) (experiments.Figure, error) {
	t0 := time.Now()
	f, err := suite.Figure(id)
	if err != nil {
		return f, err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "[%s reproduced in %v]\n", id, time.Since(t0).Round(time.Millisecond))
	}
	return f, nil
}
