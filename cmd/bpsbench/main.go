// Command bpsbench regenerates the BPS paper's evaluation: every table
// and figure of §IV, at a configurable fraction of the paper's data
// volume.
//
// Usage:
//
//	bpsbench [-fig all|table1|table2|fig4|...|fig12] [-scale 0.015625] [-seed 42]
//
// The output for a CC figure is the per-run measurement table followed by
// the normalized correlation coefficient of each metric against
// application execution time — the figure's bar values. Detail figures
// print the metric/execution-time series the paper plots.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bps/internal/experiments"
	"bps/internal/report"
)

func main() {
	fig := flag.String("fig", "all", "what to reproduce: all, table1, table2, fig4..fig12, or ext1..ext2")
	scale := flag.Float64("scale", 1.0/64, "fraction of the paper's data sizes (1.0 = full scale)")
	seed := flag.Int64("seed", 42, "base RNG seed")
	quiet := flag.Bool("q", false, "suppress timing chatter")
	asCSV := flag.Bool("csv", false, "emit per-run rows (and cc rows) as CSV instead of tables")
	seeds := flag.Int("seeds", 0, "robustness mode: rerun the figure under N seeds and report CC ranges")
	flag.Parse()

	if *seeds > 0 {
		r, err := experiments.RunRobustness(experiments.Params{Scale: *scale, Seed: *seed}, *fig, *seeds)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bpsbench:", err)
			os.Exit(1)
		}
		fmt.Print(r)
		return
	}

	if *asCSV {
		if err := runCSV(*fig, *scale, *seed, *quiet); err != nil {
			fmt.Fprintln(os.Stderr, "bpsbench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*fig, *scale, *seed, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "bpsbench:", err)
		os.Exit(1)
	}
}

func run(fig string, scale float64, seed int64, quiet bool) error {
	out := os.Stdout
	suite := experiments.NewSuite(experiments.Params{Scale: scale, Seed: seed})

	switch fig {
	case "table1":
		report.WriteTable1(out)
		return nil
	case "table2":
		report.WriteTable2(out)
		return nil
	case "all":
		report.WriteTable1(out)
		report.WriteTable2(out)
		var figs []experiments.Figure
		for _, id := range experiments.FigureIDs {
			f, err := timed(suite, id, quiet)
			if err != nil {
				return err
			}
			report.WriteFigure(out, f)
			figs = append(figs, f)
		}
		report.WriteSummary(out, figs)
		report.WriteComparison(out, figs)
		for _, id := range experiments.ExtensionIDs {
			f, err := timed(suite, id, quiet)
			if err != nil {
				return err
			}
			report.WriteFigure(out, f)
		}
		return nil
	default:
		f, err := timed(suite, fig, quiet)
		if err != nil {
			return err
		}
		report.WriteFigure(out, f)
		return nil
	}
}

// runCSV emits machine-readable rows for one figure (or every figure
// when fig is "all").
func runCSV(fig string, scale float64, seed int64, quiet bool) error {
	suite := experiments.NewSuite(experiments.Params{Scale: scale, Seed: seed})
	ids := []string{fig}
	if fig == "all" {
		ids = append(append([]string{}, experiments.FigureIDs...), experiments.ExtensionIDs...)
	}
	for _, id := range ids {
		f, err := timed(suite, id, quiet)
		if err != nil {
			return err
		}
		if err := report.WriteFigureCSV(os.Stdout, f); err != nil {
			return err
		}
	}
	return nil
}

func timed(suite *experiments.Suite, id string, quiet bool) (experiments.Figure, error) {
	t0 := time.Now()
	f, err := suite.Figure(id)
	if err != nil {
		return f, err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "[%s reproduced in %v]\n", id, time.Since(t0).Round(time.Millisecond))
	}
	return f, nil
}
