// Command bpsbench regenerates the BPS paper's evaluation: every table
// and figure of §IV, at a configurable fraction of the paper's data
// volume — and, with -backend os|mem, measures a real or in-memory
// filesystem through the same metric stack instead of simulating one.
//
// Usage:
//
//	bpsbench [-fig all|table1|table2|fig4|...|fig12|faults|clientcache|shardscale|qos|livemem|suite] [-scale 0.015625] [-seed 42] [-parallel N] [-shards N]
//	bpsbench -faults [-fault-rates 0,0.004,0.016]
//	bpsbench -fig clientcache
//	bpsbench -fig livemem
//	bpsbench -fig suite [-seeds 5] [-roofline-out suite.json]
//	bpsbench -backend mem [-live-procs 4] [-live-mb 64] [-live-record 1048576]
//	bpsbench -backend os -dir /data/bench -wall [-direct] [-windows 0.01] [-windows-out w.csv]
//
// The output for a CC figure is the per-run measurement table followed by
// the normalized correlation coefficient of each metric against
// application execution time — the figure's bar values. Detail figures
// print the metric/execution-time series the paper plots.
//
// Live backends: -backend mem measures the in-memory filesystem (a
// deterministic virtual-clock run unless -wall), -backend os measures
// the real directory tree under -dir (use iogen -layout to pre-build
// one). Each recorded process becomes a concurrent worker goroutine;
// the run reports the same BPS/IOPS/BW/ARPT surfaces a simulation does.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"bps/internal/backend"
	"bps/internal/clock"
	"bps/internal/experiments"
	"bps/internal/live"
	"bps/internal/obs"
	"bps/internal/obs/forecast"
	"bps/internal/obs/serve"
	"bps/internal/report"
	"bps/internal/roofline"
	"bps/internal/sim"
	"bps/internal/workload"
)

func main() {
	fig := flag.String("fig", "all", "what to reproduce: all, table1, table2, fig4..fig12, ext1..ext3, faults, clientcache, shardscale, qos, livemem, or suite")
	scale := flag.Float64("scale", 1.0/64, "fraction of the paper's data sizes (1.0 = full scale)")
	seed := flag.Int64("seed", 42, "base RNG seed")
	parallel := flag.Int("parallel", runtime.NumCPU(), "worker goroutines for sweep runs (results are identical for any value)")
	shards := flag.Int("shards", 0, "engine shard workers per run: 0 = classic single-calendar engine, N = sharded engine with N workers, -1 = GOMAXPROCS; the shardscale figure is always sharded and defaults to GOMAXPROCS")
	quiet := flag.Bool("q", false, "suppress timing chatter")
	asCSV := flag.Bool("csv", false, "emit per-run rows (and cc rows) as CSV instead of tables")
	seeds := flag.Int("seeds", 0, "robustness mode: rerun the figure under N seeds and report CC ranges; for -fig suite, the number of seeds per phase (default 5)")
	rooflineOut := flag.String("roofline-out", "", "with -fig suite: write the suite report (per-phase CC distributions, ceilings, headroom) as JSON here")
	traceOut := flag.String("trace-out", "", "write the last reproduced run as Chrome trace-event JSON here")
	metricsOut := flag.String("metrics-out", "", "write the last reproduced run's per-layer metrics as CSV here")
	faultsFig := flag.Bool("faults", false, "shortcut for -fig faults: the BPS-under-degradation FaultSweep")
	faultRates := flag.String("fault-rates", "", "comma-separated fault rates for the FaultSweep x-axis (default 0,0.001,0.004,0.016,0.064)")
	attribOut := flag.String("attrib-out", "", "run the critical-path profiler, print the per-layer blame table, and write folded flame-graph stacks here")
	windows := flag.Float64("windows", 0, "streaming windowed estimator width in seconds (0 = off); prints the per-window BPS/IOPS/BW/ARPT series")
	serveAddr := flag.String("serve", "", "serve live observability on this address while runs execute (/metrics /windows /forecast /stream); forces -parallel 1 and defaults -windows to 0.01")
	forecastOut := flag.Bool("forecast", false, "run the online burst forecaster over the last run's window series and print per-window forecasts and alerts (needs -windows)")
	windowsOut := flag.String("windows-out", "", "write the run's window series as CSV here (needs -windows, or a live -backend where it is on by default)")
	backendName := flag.String("backend", "sim", "what serves the I/O: sim (reproduce figures), os (measure the real directory under -dir), mem (measure the in-memory filesystem)")
	dir := flag.String("dir", "", "directory tree to measure with -backend os")
	direct := flag.Bool("direct", false, "open data files with O_DIRECT on -backend os (Linux; bypasses the page cache)")
	wallClock := flag.Bool("wall", false, "live backends: time with the wall clock (real measurement) instead of deterministic per-worker virtual lanes")
	liveProcs := flag.Int("live-procs", 4, "live backends: concurrent worker processes")
	liveMB := flag.Int64("live-mb", 64, "live backends: MiB each worker reads from its slot file")
	liveRecord := flag.Int64("live-record", 1<<20, "live backends: bytes per access")
	flag.Parse()

	if *faultsFig {
		*fig = experiments.FaultFigureID
	}
	rates, err := parseRates(*faultRates)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bpsbench: -fault-rates:", err)
		os.Exit(1)
	}

	switch *backendName {
	case "sim":
		// The simulated reproduction below.
	case "os", "mem":
		err := runLive(os.Stdout, liveOpts{
			backend:    *backendName,
			dir:        *dir,
			direct:     *direct,
			wall:       *wallClock,
			procs:      *liveProcs,
			perProcMB:  *liveMB,
			record:     *liveRecord,
			seed:       *seed,
			windows:    *windows,
			windowsOut: *windowsOut,
			serveAddr:  *serveAddr,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "bpsbench:", err)
			os.Exit(1)
		}
		return
	default:
		fmt.Fprintf(os.Stderr, "bpsbench: unknown -backend %q (sim, os, mem)\n", *backendName)
		os.Exit(1)
	}

	if *windowsOut != "" && *windows == 0 {
		fmt.Fprintln(os.Stderr, "bpsbench: -windows-out needs -windows (no window series without the streaming estimator)")
		os.Exit(1)
	}

	if *serveAddr != "" && *windows == 0 {
		*windows = 0.01
	}
	if *forecastOut && *windows == 0 {
		fmt.Fprintln(os.Stderr, "bpsbench: -forecast needs -windows (the forecaster consumes the window series)")
		os.Exit(1)
	}
	if *serveAddr != "" {
		// One publisher serves the whole sweep; runs must tick it
		// sequentially, so the sweep cannot fan out.
		*parallel = 1
	}

	if *shards < 0 {
		*shards = runtime.GOMAXPROCS(0)
	}
	params := experiments.Params{Scale: *scale, Seed: *seed, Parallel: *parallel, FaultRates: rates, Shards: *shards}

	if *fig == experiments.SuiteFigureID {
		nseeds := *seeds
		if nseeds == 0 {
			nseeds = 5
		}
		if err := runSuiteFig(os.Stdout, params, nseeds, *rooflineOut, *quiet); err != nil {
			fmt.Fprintln(os.Stderr, "bpsbench:", err)
			os.Exit(1)
		}
		return
	}
	if *rooflineOut != "" {
		fmt.Fprintln(os.Stderr, "bpsbench: -roofline-out needs -fig suite (the suite computes the roofline fits)")
		os.Exit(1)
	}

	if *seeds > 0 {
		r, err := experiments.RunRobustness(params, *fig, *seeds)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bpsbench:", err)
			os.Exit(1)
		}
		fmt.Print(r)
		return
	}

	suite := experiments.NewSuite(params)
	if *traceOut != "" || *metricsOut != "" || *attribOut != "" || *windows > 0 || *serveAddr != "" {
		opts := &obs.Options{
			ChromeTrace: *traceOut != "",
			SampleEvery: sim.Millisecond,
			Attribution: *attribOut != "",
			WindowEvery: sim.Time(*windows * float64(sim.Second)),
		}
		if *serveAddr != "" {
			pub := serve.NewPublisher("bpsbench -fig "+*fig, forecast.Config{})
			srv, err := serve.Start(*serveAddr, pub)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bpsbench:", err)
				os.Exit(1)
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "[serving live observability on http://%s]\n", srv.Addr())
			opts.Tick = pub.Hook()
		}
		suite.SetObserve(opts)
	}

	if *asCSV {
		err = runCSV(suite, *fig, *quiet)
	} else {
		err = run(suite, *fig, *quiet)
	}
	if err == nil {
		err = writeObservation(suite, *traceOut, *metricsOut, *attribOut, *windowsOut, *windows > 0, *forecastOut)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bpsbench:", err)
		os.Exit(1)
	}
}

// runSuiteFig reproduces the IO500-style composite: the suite sweep
// under nseeds seeds, the statistical report with bootstrap CIs and
// roofline headroom, and optionally the JSON artifact.
func runSuiteFig(w io.Writer, params experiments.Params, nseeds int, rooflineOut string, quiet bool) error {
	t0 := time.Now()
	rep, err := experiments.RunSuite(params, nseeds)
	if err != nil {
		return err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "[suite reproduced under %d seeds in %v]\n", nseeds, time.Since(t0).Round(time.Millisecond))
	}
	report.WriteSuite(w, rep)
	if rooflineOut != "" {
		f, err := os.Create(rooflineOut)
		if err != nil {
			return err
		}
		if err := report.WriteSuiteJSON(f, rep); err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", rooflineOut, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "[wrote suite roofline report to %s]\n", rooflineOut)
	}
	return nil
}

// liveOpts collects the -backend os|mem knobs.
type liveOpts struct {
	backend    string
	dir        string
	direct     bool
	wall       bool
	procs      int
	perProcMB  int64
	record     int64
	seed       int64
	windows    float64
	windowsOut string
	serveAddr  string
}

// liveAccesses builds the live workload: each process sequentially
// reads its own slot file in record-size chunks, back to back.
func liveAccesses(procs int, perProc, record int64) []workload.Access {
	var accs []workload.Access
	for pid := 0; pid < procs; pid++ {
		for off := int64(0); off < perProc; off += record {
			n := record
			if off+n > perProc {
				n = perProc - off
			}
			accs = append(accs, workload.Access{
				PID: int64(pid), Slot: pid, Off: off, Size: n,
			})
		}
	}
	return accs
}

// runLive measures a real backend: the -backend os|mem path. The same
// middleware chain and metric stack as a simulation, but served by
// concurrent goroutines against an actual filesystem.
func runLive(w io.Writer, o liveOpts) error {
	if o.procs < 1 || o.perProcMB < 1 || o.record < 1 {
		return fmt.Errorf("-live-procs, -live-mb and -live-record must be positive")
	}
	var fsys backend.FS
	switch o.backend {
	case "mem":
		fsys = backend.NewMemFS()
	case "os":
		if o.dir == "" {
			return fmt.Errorf("-backend os needs -dir (the directory tree to measure)")
		}
		if err := os.MkdirAll(o.dir, 0o755); err != nil {
			return err
		}
		fsys = backend.NewOSFS(o.dir, o.direct)
	}
	mode := live.Virtual
	if o.wall {
		mode = live.Wall
	}
	cfg := live.Config{
		FS:          fsys,
		Mode:        mode,
		Cost:        clock.CostModel{PerOp: 100 * sim.Microsecond, BytesPerSec: 200e6},
		WindowEvery: sim.Time(o.windows * float64(sim.Second)),
		Seed:        o.seed,
		Label:       "bpsbench -backend " + o.backend,
	}
	// The virtual clock charges exactly the cost model, so its roofline
	// is the model itself; a wall-clock run is bounded by real hardware
	// the model does not describe, so no ceiling is claimed there.
	var ceiling float64
	if mode == live.Virtual {
		m := roofline.Model{
			DeviceBytesPerSec: cfg.Cost.BytesPerSec,
			DevicePerOp:       cfg.Cost.PerOp,
			Servers:           1,
			Clients:           1,
		}
		ceiling = m.CeilingBPS(o.record, o.procs, 0)
	}
	if o.serveAddr != "" {
		pub := serve.NewPublisher(cfg.Label, forecast.Config{})
		pub.SetRoofline(ceiling)
		srv, err := serve.Start(o.serveAddr, pub)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "[serving live observability on http://%s]\n", srv.Addr())
		cfg.Publish = func(now sim.Time, src live.Source) { pub.Publish(now, src) }
	}

	accs := liveAccesses(o.procs, o.perProcMB<<20, o.record)
	t0 := time.Now()
	rep, err := live.Run(cfg, accs)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "[measured %s backend (%s clock) in %v]\n",
		rep.Backend, rep.Mode, time.Since(t0).Round(time.Millisecond))

	m := rep.Metrics
	fmt.Fprintf(w, "[live %s backend, %s clock, %d workers]\n", rep.Backend, rep.Mode, o.procs)
	fmt.Fprintf(w, "  accesses (N):        %d\n", m.Ops)
	fmt.Fprintf(w, "  required blocks (B): %d\n", m.Blocks)
	fmt.Fprintf(w, "  moved bytes (M):     %d\n", m.MovedBytes)
	fmt.Fprintf(w, "  overlapped T:        %.6f s\n", m.IOTime.Seconds())
	fmt.Fprintf(w, "  exec time:           %.6f s\n", m.ExecTime.Seconds())
	fmt.Fprintf(w, "  IOPS:                %.2f ops/s\n", m.IOPS())
	fmt.Fprintf(w, "  bandwidth:           %.2f MB/s\n", m.Bandwidth()/1e6)
	fmt.Fprintf(w, "  ARPT:                %.6f s\n", m.ARPT())
	fmt.Fprintf(w, "  BPS:                 %.2f blocks/s\n", m.BPS())
	if ceiling > 0 {
		fmt.Fprintf(w, "  roofline ceiling:    %.2f blocks/s (headroom %.1f%%)\n",
			ceiling, 100*roofline.Headroom(m.BPS(), ceiling))
	}
	if rep.Errors > 0 {
		fmt.Fprintf(w, "  (%d accesses failed)\n", rep.Errors)
	}
	if o.windowsOut != "" {
		f, err := os.Create(o.windowsOut)
		if err != nil {
			return err
		}
		if err := report.WriteWindowsCSV(f, rep.Attribution); err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", o.windowsOut, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "[wrote window series to %s]\n", o.windowsOut)
	}
	return nil
}

// parseRates parses a comma-separated -fault-rates list; "" means nil
// (use the experiment's defaults).
func parseRates(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	rates := make([]float64, 0, len(parts))
	for _, p := range parts {
		r, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		if r < 0 || r > 1 {
			return nil, fmt.Errorf("rate %g out of [0,1]", r)
		}
		rates = append(rates, r)
	}
	return rates, nil
}

// writeObservation exports the last instrumented run's Chrome trace,
// per-layer metrics CSV, attribution report (blame table plus windowed
// series on stdout, folded stacks to attribOut), and/or burst forecast.
func writeObservation(suite *experiments.Suite, traceOut, metricsOut, attribOut, windowsOut string, windows, forecastOut bool) error {
	if traceOut == "" && metricsOut == "" && attribOut == "" && !windows && !forecastOut {
		return nil
	}
	last := suite.LastObservation()
	if last == nil {
		return fmt.Errorf("-trace-out/-metrics-out/-attrib-out/-windows: no run was reproduced (tables only?)")
	}
	write := func(name string, fn func(io.Writer) error) error {
		f, err := os.Create(name)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", name, err)
		}
		return f.Close()
	}
	if traceOut != "" {
		if err := write(traceOut, last.Obs.WriteChromeTrace); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "[wrote Chrome trace of run %q to %s]\n", last.Label, traceOut)
	}
	if metricsOut != "" {
		if err := write(metricsOut, func(f io.Writer) error {
			return report.WriteObsCSV(f, last.Obs.Registry())
		}); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "[wrote per-layer metrics of run %q to %s]\n", last.Label, metricsOut)
	}
	if attribOut != "" || windows {
		rep := last.Obs.Attribution()
		report.WriteAttribution(os.Stdout, rep)
		if attribOut != "" {
			if err := write(attribOut, rep.WriteFolded); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "[wrote folded stacks of run %q to %s]\n", last.Label, attribOut)
		}
		if windowsOut != "" {
			if err := write(windowsOut, func(f io.Writer) error {
				return report.WriteWindowsCSV(f, rep)
			}); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "[wrote window series of run %q to %s]\n", last.Label, windowsOut)
		}
	}
	if forecastOut {
		report.WriteForecast(os.Stdout, last.Obs.Attribution(), forecast.Config{})
	}
	return nil
}

func run(suite *experiments.Suite, fig string, quiet bool) error {
	out := os.Stdout

	switch fig {
	case "table1":
		report.WriteTable1(out)
		return nil
	case "table2":
		report.WriteTable2(out)
		return nil
	case "all":
		report.WriteTable1(out)
		report.WriteTable2(out)
		var figs []experiments.Figure
		for _, id := range experiments.FigureIDs {
			f, err := timed(suite, id, quiet)
			if err != nil {
				return err
			}
			report.WriteFigure(out, f)
			figs = append(figs, f)
		}
		report.WriteSummary(out, figs)
		report.WriteComparison(out, figs)
		for _, id := range experiments.ExtensionIDs {
			f, err := timed(suite, id, quiet)
			if err != nil {
				return err
			}
			report.WriteFigure(out, f)
		}
		return nil
	case experiments.FaultFigureID:
		f, err := timed(suite, fig, quiet)
		if err != nil {
			return err
		}
		report.WriteFaultFigure(out, f)
		return nil
	case experiments.ClientCacheFigureID:
		f, err := timed(suite, fig, quiet)
		if err != nil {
			return err
		}
		report.WriteClientCacheFigure(out, f)
		return nil
	case experiments.QoSFigureID:
		f, err := timed(suite, fig, quiet)
		if err != nil {
			return err
		}
		report.WriteQoSFigure(out, f)
		return nil
	default:
		f, err := timed(suite, fig, quiet)
		if err != nil {
			return err
		}
		report.WriteFigure(out, f)
		return nil
	}
}

// runCSV emits machine-readable rows for one figure (or every figure
// when fig is "all").
func runCSV(suite *experiments.Suite, fig string, quiet bool) error {
	ids := []string{fig}
	if fig == "all" {
		ids = append(append([]string{}, experiments.FigureIDs...), experiments.ExtensionIDs...)
	}
	for _, id := range ids {
		f, err := timed(suite, id, quiet)
		if err != nil {
			return err
		}
		if err := report.WriteFigureCSV(os.Stdout, f); err != nil {
			return err
		}
	}
	return nil
}

func timed(suite *experiments.Suite, id string, quiet bool) (experiments.Figure, error) {
	t0 := time.Now()
	f, err := suite.Figure(id)
	if err != nil {
		return f, err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "[%s reproduced in %v]\n", id, time.Since(t0).Round(time.Millisecond))
	}
	return f, nil
}
