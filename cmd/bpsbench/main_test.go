package main

import (
	"strings"
	"testing"

	"bps/internal/experiments"
	"bps/internal/report"
)

func TestRunTables(t *testing.T) {
	// Tables are static; run() writes them to stdout, so exercise the
	// report writers through the same paths run() uses.
	var sb strings.Builder
	report.WriteTable1(&sb)
	report.WriteTable2(&sb)
	out := sb.String()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "Table 2") {
		t.Fatalf("tables output:\n%s", out)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	suite := experiments.NewSuite(experiments.Params{Scale: 1.0 / 1024, Seed: 1})
	if err := run(suite, "fig99", true); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunSingleFigureTiny(t *testing.T) {
	// A tiny-scale single figure exercises the full pipeline.
	suite := experiments.NewSuite(experiments.Params{Scale: 1.0 / 2048, Seed: 1})
	if err := run(suite, "fig5", true); err != nil {
		t.Fatal(err)
	}
}

func TestTimedWrapsSuite(t *testing.T) {
	suite := experiments.NewSuite(experiments.Params{Scale: 1.0 / 2048, Seed: 1})
	f, err := timed(suite, "fig7", true)
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != "fig7" || !f.IsDetail {
		t.Fatalf("figure = %+v", f)
	}
	if _, err := timed(suite, "nope", true); err == nil {
		t.Fatal("unknown id accepted")
	}
}
