package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bps"
	"bps/internal/obs/forecast"
	"bps/internal/obs/serve"
)

func TestValidateFlags(t *testing.T) {
	valid := options{
		stack: "hddx4", window: 0.01, sample: 0.001, burstK: 2.5,
		procs: 4, mb: 64, record: 1 << 20,
		jobs: true, maxJobs: 32, batchWait: 50 * time.Millisecond, grace: 10 * time.Second,
	}
	cases := []struct {
		name    string
		mutate  func(*options)
		logs    []string
		set     []string // flags "explicitly passed"
		wantErr string   // "" = valid
	}{
		{name: "defaults", mutate: func(o *options) {}},
		{name: "replay", mutate: func(o *options) {}, logs: []string{"x.csv"}},
		{name: "explicit positive pace", mutate: func(o *options) { o.pace = time.Millisecond }, set: []string{"pace"}},
		{name: "loop without jobs", mutate: func(o *options) { o.loop = true; o.jobs = false }},
		{name: "negative pace", mutate: func(o *options) { o.pace = -time.Second }, wantErr: "-pace"},
		{name: "explicit zero pace", mutate: func(o *options) {}, set: []string{"pace"}, wantErr: "-pace"},
		{name: "loop with finite replay", mutate: func(o *options) { o.loop = true; o.jobs = false }, logs: []string{"x.csv"}, wantErr: "finite log replay"},
		{name: "loop with jobs", mutate: func(o *options) { o.loop = true }, wantErr: "jobs API"},
		{name: "unknown stack", mutate: func(o *options) { o.stack = "tape" }, wantErr: `unknown stack "tape"`},
		{name: "bad server count", mutate: func(o *options) { o.stack = "hddx0" }, wantErr: "server count"},
		{name: "zero window", mutate: func(o *options) { o.window = 0 }, wantErr: "-window"},
		{name: "negative sample", mutate: func(o *options) { o.sample = -1 }, wantErr: "-sample"},
		{name: "zero burst-k", mutate: func(o *options) { o.burstK = 0 }, wantErr: "-burst-k"},
		{name: "fault rate over 1", mutate: func(o *options) { o.faultRate = 1.5 }, wantErr: "-fault-rate"},
		{name: "zero procs", mutate: func(o *options) { o.procs = 0 }, wantErr: "-procs"},
		{name: "zero mb", mutate: func(o *options) { o.mb = 0 }, wantErr: "-mb"},
		{name: "sub-block record", mutate: func(o *options) { o.record = 100 }, wantErr: "-record"},
		{name: "zero max-jobs", mutate: func(o *options) { o.maxJobs = 0 }, wantErr: "-max-jobs"},
		{name: "negative batch-wait", mutate: func(o *options) { o.batchWait = -time.Second }, wantErr: "-batch-wait"},
		{name: "zero grace", mutate: func(o *options) { o.grace = 0 }, wantErr: "-grace"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := valid
			tc.mutate(&opts)
			set := make(map[string]bool)
			for _, f := range tc.set {
				set[f] = true
			}
			err := validate(opts, tc.logs, set)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// testManager builds a jobManager on a tiny two-server stack with its
// API mounted on an httptest server. The scheduler is NOT started;
// tests that need it call mgr.start().
func testManager(t *testing.T, maxJobs int, batchWait time.Duration) (*jobManager, *httptest.Server) {
	t.Helper()
	opts := options{
		seed: 1, procs: 2, mb: 2, record: 1 << 20,
		maxJobs: maxJobs, batchWait: batchWait, grace: 30 * time.Second,
	}
	storage := bps.Storage{Media: bps.HDD, Servers: 2, SharedFile: true}
	pub := serve.NewPublisher("test", forecast.Config{})
	mgr := newJobManager(opts, storage, func() *bps.ObserveOptions { return nil }, io.Discard)
	mux := http.NewServeMux()
	mgr.mount(mux, pub)
	mux.Handle("/", pub.Handler())
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return mgr, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, job) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var j job
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(raw, &j); err != nil {
			t.Fatalf("decoding job: %v (%s)", err, raw)
		}
	}
	return resp, j
}

func getJob(t *testing.T, ts *httptest.Server, id int) job {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/jobs/%d", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%d: %s", id, resp.Status)
	}
	var j job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	return j
}

func waitState(t *testing.T, ts *httptest.Server, id int, state string) job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		j := getJob(t, ts, id)
		if j.State == state {
			return j
		}
		if j.State == stateFailed {
			t.Fatalf("job %d failed: %s", id, j.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %d stuck in %q waiting for %q", id, j.State, state)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobsSaturation checks the bounded queue: past -max-jobs,
// submissions get 429 with a Retry-After header, and nothing deadlocks
// (the earlier submissions are still there and well-formed).
func TestJobsSaturation(t *testing.T) {
	_, ts := testManager(t, 2, 50*time.Millisecond) // scheduler never started: queue can only fill
	r1, j1 := postJob(t, ts, `{"tenant":"a"}`)
	r2, _ := postJob(t, ts, `{"tenant":"b"}`)
	if r1.StatusCode != http.StatusAccepted || r2.StatusCode != http.StatusAccepted {
		t.Fatalf("first two submissions: %s, %s", r1.Status, r2.Status)
	}
	r3, _ := postJob(t, ts, `{"tenant":"c"}`)
	if r3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submission: %s, want 429", r3.Status)
	}
	if r3.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	if j := getJob(t, ts, j1.ID); j.State != stateQueued {
		t.Fatalf("job 1 state %q, want queued", j.State)
	}
}

// TestJobsValidation checks submissions are rejected with 400 before
// they reach the queue.
func TestJobsValidation(t *testing.T) {
	_, ts := testManager(t, 8, 0)
	for _, body := range []string{
		`not json`,
		`{}`,                                   // missing tenant
		`{"tenant":"has space"}`,               // bad name
		`{"tenant":"a","procs":-1}`,            // bad procs
		`{"tenant":"a","mb":-5}`,               // bad volume
		`{"tenant":"a","record_bytes":100}`,    // sub-block record
		`{"tenant":"a","bps_floor":-1}`,        // negative floor
	} {
		resp, _ := postJob(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s: %s, want 400", body, resp.Status)
		}
	}
}

// TestJobsDeleteQueued checks DELETE cancels a queued job and refuses
// anything else.
func TestJobsDeleteQueued(t *testing.T) {
	_, ts := testManager(t, 8, time.Hour) // batch window never closes in test time
	_, j := postJob(t, ts, `{"tenant":"a"}`)

	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/jobs/%d", ts.URL, j.ID), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE queued job: %s, want 204", resp.Status)
	}
	if got := getJob(t, ts, j.ID); got.State != stateCancelled {
		t.Fatalf("state %q after delete, want cancelled", got.State)
	}
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE cancelled job: %s, want 409", resp2.Status)
	}
	if resp3, _ := http.Get(ts.URL + "/jobs/999"); resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("GET missing job: %s, want 404", resp3.Status)
	}
}

// TestJobsTwoTenantThrottle is the tentpole end to end over HTTP: two
// tenants submitted into one batch window, tenant A protected by an
// unmeetable floor, so the controller must activate and throttle B.
func TestJobsTwoTenantThrottle(t *testing.T) {
	mgr, ts := testManager(t, 8, 200*time.Millisecond)
	_, ja := postJob(t, ts, `{"tenant":"alpha","priority":1,"bps_floor":1e8,"procs":2,"mb":4,"record_bytes":1048576}`)
	_, jb := postJob(t, ts, `{"tenant":"beta","procs":2,"mb":1,"record_bytes":4096}`)
	mgr.start()

	a := waitState(t, ts, ja.ID, stateDone)
	b := waitState(t, ts, jb.ID, stateDone)
	if a.Batch != b.Batch {
		t.Fatalf("tenants split across batches %d and %d; they must contend in one run", a.Batch, b.Batch)
	}
	if a.Result == nil || a.Result.BPS <= 0 || a.Result.Blocks == 0 {
		t.Fatalf("tenant A result: %+v", a.Result)
	}
	if b.Result.QoSDelayed+b.Result.QoSShed == 0 {
		t.Fatalf("tenant B was neither delayed nor shed under A's unmeetable floor: %+v", b.Result)
	}

	resp, err := http.Get(ts.URL + "/qos")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep bps.QoSReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Enabled || rep.Activations == 0 {
		t.Fatalf("controller report shows no activations: %+v", rep)
	}
	if len(rep.Tenants) != 2 {
		t.Fatalf("report has %d tenants, want 2", len(rep.Tenants))
	}

	// healthz reflects the finished work.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var h daemonHealth
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Jobs.Done != 2 || h.Jobs.Queued != 0 {
		t.Fatalf("healthz = %+v", h)
	}
}

// TestJobsDrain checks graceful shutdown: accepted jobs finish within
// the grace period, new submissions are refused with 503, and the
// scheduler exits.
func TestJobsDrain(t *testing.T) {
	mgr, ts := testManager(t, 8, 50*time.Millisecond)
	_, j := postJob(t, ts, `{"tenant":"a","procs":1,"mb":1}`)
	mgr.start()

	if err := mgr.drain(30 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := getJob(t, ts, j.ID); got.State != stateDone {
		t.Fatalf("job state %q after drain, want done", got.State)
	}
	resp, _ := postJob(t, ts, `{"tenant":"late"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST while draining: %s, want 503", resp.Status)
	}
	var h daemonHealth
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" || !h.Jobs.Draining {
		t.Fatalf("healthz after drain = %+v, want draining status", h)
	}
}

// TestJobsBatchDeterminism reruns an identical submission sequence on a
// fresh manager and requires identical measured results — the daemon's
// restart-reproducibility contract (seed × batch index → engine seed).
func TestJobsBatchDeterminism(t *testing.T) {
	run := func() (job, job) {
		mgr, ts := testManager(t, 8, 200*time.Millisecond)
		_, ja := postJob(t, ts, `{"tenant":"alpha","priority":1,"bps_floor":1e8,"procs":2,"mb":4}`)
		_, jb := postJob(t, ts, `{"tenant":"beta","procs":2,"mb":1,"record_bytes":4096}`)
		mgr.start()
		a := waitState(t, ts, ja.ID, stateDone)
		b := waitState(t, ts, jb.ID, stateDone)
		return a, b
	}
	a1, b1 := run()
	a2, b2 := run()
	if *a1.Result != *a2.Result {
		t.Errorf("tenant A results diverged across identical daemons:\n%+v\n%+v", a1.Result, a2.Result)
	}
	if *b1.Result != *b2.Result {
		t.Errorf("tenant B results diverged across identical daemons:\n%+v\n%+v", b1.Result, b2.Result)
	}
}
