package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"bps"
)

// BenchmarkJobsSubmit measures the POST /jobs hot path — body decode
// (through the pooled buffers), validation, and enqueue — without the
// scheduler, network, or a simulation. Each iteration immediately
// retires the accepted job so the queue and job table stay constant
// size; that cleanup is constant-time and part of the measured path.
func BenchmarkJobsSubmit(b *testing.B) {
	opts := options{
		seed: 1, procs: 2, mb: 2, record: 1 << 20,
		maxJobs: 8, batchWait: time.Second, grace: 30 * time.Second,
	}
	storage := bps.Storage{Media: bps.HDD, Servers: 2, SharedFile: true}
	mgr := newJobManager(opts, storage, func() *bps.ObserveOptions { return nil }, io.Discard)
	body := []byte(`{"tenant":"bench","priority":1,"procs":2,"mb":4,"record_bytes":1048576}`)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/jobs", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		mgr.handleSubmit(rec, req)
		if rec.Code != http.StatusAccepted {
			b.Fatalf("submit %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
		mgr.mu.Lock()
		mgr.queue = mgr.queue[:0]
		delete(mgr.jobs, mgr.nextID-1)
		mgr.mu.Unlock()
	}
}
