// Command bpsd is the live observability daemon: it runs a simulated
// workload — a synthetic sequential read by default, or a replay of
// ingested Darshan-style logs — with the streaming window estimator and
// the online burst forecaster attached, and serves the run's state over
// HTTP while it executes:
//
//	/metrics   Prometheus text exposition (registry + latest window + forecasts)
//	/windows   JSON window series (BPS, bandwidth, IOPS, ARPT, utilization)
//	/forecast  JSON per-series forecasts, model selection, and burst alerts
//	/roofline  JSON live headroom against the workload's analytic BPS ceiling
//	/stream    Server-Sent Events: windows and alerts as they close
//
// Serving is timing-neutral: the exported snapshots are built on sampler
// ticks inside the simulation without consuming simulated time, so a run
// under bpsd produces bit-identical metrics to the same run without it.
// Simulated runs complete far faster than the I/O they model; -pace adds
// wall-clock delay per sampler tick so the stream is observable in human
// time (simulated results are unaffected).
//
// Usage:
//
//	bpsd [-addr :8090] [-stack hddx4] [-seed 1] [-window 0.01] [-sample 0.001]
//	     [-pace 0] [-loop] [-burst-k 2.5] [-fault-rate 0]
//	     [-jobs] [-max-jobs 32] [-batch-wait 50ms] [-grace 10s] [LOGFILE...]
//
// With log file arguments the workload is an ingested replay (see the
// README's ingestion format: CSV segment tables or JSONL); without, a
// -procs × -mb sequential read. -loop reruns the workload forever, so
// the endpoints stay live; otherwise bpsd serves the final state until
// interrupted.
//
// With -jobs (the default) bpsd additionally accepts concurrent
// workload submissions over HTTP once the base run finishes:
//
//	POST   /jobs      submit {"tenant","priority","bps_floor","procs","mb",...}
//	GET    /jobs/{id} job state, metrics, and QoS outcome
//	DELETE /jobs/{id} cancel a queued job
//	GET    /qos       last batch's full QoS controller report
//	GET    /healthz   liveness + queue depth + stream backpressure
//
// Submissions arriving within one -batch-wait window run together as
// tenants of a single multi-tenant simulation under the QoS admission
// controller (internal/qos): tenants with a bps_floor are protected,
// lower-priority tenants are throttled or shed when the floor is
// violated. The queue is bounded by -max-jobs; past it submissions get
// 429 with Retry-After. SIGTERM drains accepted jobs within -grace,
// then exits cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"bps"
	"bps/internal/obs"
	"bps/internal/obs/forecast"
	"bps/internal/obs/serve"
	"bps/internal/sim"
)

func main() {
	addr := flag.String("addr", ":8090", "HTTP listen address")
	stack := flag.String("stack", "hddx4", "simulated stack: hdd, ssd, hddxN, ssdxN (N servers)")
	seed := flag.Int64("seed", 1, "simulation seed (equal seeds give identical runs)")
	window := flag.Float64("window", 0.01, "streaming estimator window width in seconds")
	sample := flag.Float64("sample", 0.001, "sampler tick interval in seconds (drives snapshot publication)")
	pace := flag.Duration("pace", 0, "wall-clock delay per sampler tick (makes the stream observable; simulated time unaffected)")
	loop := flag.Bool("loop", false, "rerun the workload forever instead of serving the final state")
	burstK := flag.Float64("burst-k", 2.5, "burst alert threshold: observed or forecast rate above k×baseline")
	faultRate := flag.Float64("fault-rate", 0, "inject faults at this rate into the stack")
	procs := flag.Int("procs", 4, "synthetic workload: process count (ignored with log files)")
	mb := flag.Int64("mb", 64, "synthetic workload: MiB per process (ignored with log files)")
	record := flag.Int64("record", 1<<20, "synthetic workload: record size in bytes (ignored with log files)")
	jobs := flag.Bool("jobs", true, "serve the multi-tenant jobs API (POST /jobs) after the base run")
	maxJobs := flag.Int("max-jobs", 32, "job queue bound; submissions past it get 429 + Retry-After")
	batchWait := flag.Duration("batch-wait", 50*time.Millisecond, "window to coalesce concurrent submissions into one multi-tenant run")
	grace := flag.Duration("grace", 10*time.Second, "SIGTERM drain deadline for accepted jobs")
	flag.Parse()

	opts := options{
		addr: *addr, stack: *stack, seed: *seed,
		window: *window, sample: *sample, pace: *pace, loop: *loop,
		burstK: *burstK, faultRate: *faultRate,
		procs: *procs, mb: *mb, record: *record,
		jobs: *jobs, maxJobs: *maxJobs, batchWait: *batchWait, grace: *grace,
	}
	set := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if err := validate(opts, flag.Args(), set); err != nil {
		fmt.Fprintln(os.Stderr, "bpsd:", err)
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, flag.Args(), opts); err != nil {
		fmt.Fprintln(os.Stderr, "bpsd:", err)
		os.Exit(1)
	}
}

type options struct {
	addr      string
	stack     string
	seed      int64
	window    float64
	sample    float64
	pace      time.Duration
	loop      bool
	burstK    float64
	faultRate float64
	procs     int
	mb        int64
	record    int64
	jobs      bool
	maxJobs   int
	batchWait time.Duration
	grace     time.Duration
}

// validate fails fast on bad or conflicting flags — with a usage
// message, before the listener starts, instead of a panic mid-run. set
// holds the flags the user passed explicitly, so "-pace 0" (explicitly
// asking for zero pacing) is distinguishable from the default.
func validate(opts options, logs []string, set map[string]bool) error {
	if _, err := parseStack(opts.stack); err != nil {
		return err
	}
	switch {
	case opts.pace < 0, set["pace"] && opts.pace == 0:
		return fmt.Errorf("-pace must be a positive duration (it is the wall-clock delay per sampler tick)")
	case opts.loop && len(logs) > 0:
		return fmt.Errorf("-loop conflicts with a finite log replay: every iteration replays the identical log; drop -loop or the log files")
	case opts.loop && opts.jobs:
		return fmt.Errorf("-loop conflicts with the jobs API (the publisher serves one run at a time); pass -jobs=false to loop")
	case opts.window <= 0:
		return fmt.Errorf("-window must be positive")
	case opts.sample <= 0:
		return fmt.Errorf("-sample must be positive")
	case opts.burstK <= 0:
		return fmt.Errorf("-burst-k must be positive")
	case opts.faultRate < 0 || opts.faultRate > 1:
		return fmt.Errorf("-fault-rate must be in [0, 1]")
	case opts.procs < 1:
		return fmt.Errorf("-procs must be at least 1")
	case opts.mb < 1:
		return fmt.Errorf("-mb must be at least 1")
	case opts.record < 512:
		return fmt.Errorf("-record must be at least one 512-byte block")
	case opts.maxJobs < 1:
		return fmt.Errorf("-max-jobs must be at least 1")
	case opts.batchWait < 0:
		return fmt.Errorf("-batch-wait must not be negative")
	case opts.grace <= 0:
		return fmt.Errorf("-grace must be positive")
	}
	return nil
}

func run(w io.Writer, logs []string, opts options) error {
	storage, err := parseStack(opts.stack)
	if err != nil {
		return err
	}
	storage.FaultRate = opts.faultRate

	var ioLog *bps.IOLog
	label := fmt.Sprintf("seqread %d×%dMiB on %s", opts.procs, opts.mb, opts.stack)
	if len(logs) > 0 {
		if ioLog, err = bps.ReadLogs(logs...); err != nil {
			return err
		}
		label = fmt.Sprintf("replay of %s on %s (%d segments)",
			strings.Join(logs, ","), opts.stack, ioLog.Len())
	}

	pub := serve.NewPublisher(label, forecast.Config{BurstK: opts.burstK})

	// The synthetic workload has one record size and process count, so
	// its analytic BPS ceiling is well-defined; /roofline then serves
	// live headroom against it. A log replay mixes request sizes, so no
	// ceiling is claimed there.
	var ceiling float64
	if ioLog == nil {
		ceiling = bps.RooflineCeiling(storage, opts.record, opts.procs)
		pub.SetRoofline(ceiling)
	}

	hook := pub.Hook()
	tick := hook
	if opts.pace > 0 {
		tick = func(now sim.Time, o *obs.Observer) {
			hook(now, o)
			time.Sleep(opts.pace)
		}
	}
	observe := &bps.ObserveOptions{
		SampleEvery: sim.Time(opts.sample * float64(sim.Second)),
		WindowEvery: sim.Time(opts.window * float64(sim.Second)),
		Tick:        tick,
	}
	cfg := bps.RunConfig{Storage: storage, Seed: opts.seed, Observe: observe}

	mux := http.NewServeMux()
	var mgr *jobManager
	if opts.jobs {
		mgr = newJobManager(opts, storage, func() *bps.ObserveOptions { return observe }, w)
		mgr.mount(mux, pub)
	}
	mux.Handle("/", pub.Handler())
	srv, err := serve.StartHandler(opts.addr, mux)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Fprintf(w, "bpsd: serving %s on http://%s (/metrics /windows /forecast /roofline /stream)\n", label, srv.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	for iter := 0; ; iter++ {
		var rep bps.RunReport
		if ioLog != nil {
			rep, err = bps.ReplayLog(cfg, ioLog)
		} else {
			rep, err = bps.SimulateSequentialRead(cfg, opts.procs, opts.mb<<20, opts.record)
		}
		if err != nil {
			return err
		}
		m := rep.Metrics
		fmt.Fprintf(w, "bpsd: run %d done: B=%d T=%.6fs BPS=%.2f blk/s IOPS=%.2f BW=%.2f MB/s alerts=%d\n",
			iter, m.Blocks, m.IOTime.Seconds(), m.BPS(), m.IOPS(), m.Bandwidth()/1e6,
			len(pub.Tracker().Alerts()))
		if ceiling > 0 {
			fmt.Fprintf(w, "bpsd: run %d roofline: ceiling %.2f blk/s, headroom %.1f%%\n",
				iter, ceiling, 100*bps.Headroom(m.BPS(), ceiling))
		}
		if !opts.loop {
			break
		}
		select {
		case <-stop:
			return nil
		default:
		}
		// The publisher detects the next run's fresh observer and
		// restarts its window feed on the first tick.
	}

	if mgr != nil {
		// The publisher serves one run at a time, so job batches start
		// only after the base run released it.
		mgr.start()
		fmt.Fprintln(w, "bpsd: jobs API live (POST /jobs); serving until interrupted")
	} else {
		fmt.Fprintln(w, "bpsd: serving final state; interrupt to exit")
	}
	<-stop

	// Graceful drain: finish accepted jobs within the grace window, then
	// shut the listener down. SSE streams never end on their own, so the
	// HTTP shutdown gets a short deadline before the hard close.
	fmt.Fprintln(w, "bpsd: draining")
	var drainErr error
	if mgr != nil {
		drainErr = mgr.drain(opts.grace)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		srv.Close()
	}
	if drainErr != nil {
		return drainErr
	}
	fmt.Fprintln(w, "bpsd: drained cleanly")
	return nil
}

// parseStack interprets hdd, ssd, hddxN, ssdxN (same grammar as
// bpstrace -replay).
func parseStack(s string) (bps.Storage, error) {
	media := bps.HDD
	rest := s
	switch {
	case strings.HasPrefix(s, "hdd"):
		rest = strings.TrimPrefix(s, "hdd")
	case strings.HasPrefix(s, "ssd"):
		media = bps.SSD
		rest = strings.TrimPrefix(s, "ssd")
	default:
		return bps.Storage{}, fmt.Errorf("unknown stack %q (hdd, ssd, hddxN, ssdxN)", s)
	}
	if rest == "" {
		return bps.Storage{Media: media}, nil
	}
	if !strings.HasPrefix(rest, "x") {
		return bps.Storage{}, fmt.Errorf("unknown stack %q (hdd, ssd, hddxN, ssdxN)", s)
	}
	n, err := strconv.Atoi(rest[1:])
	if err != nil || n < 1 {
		return bps.Storage{}, fmt.Errorf("bad server count in %q", s)
	}
	return bps.Storage{Media: media, Servers: n, SharedFile: true}, nil
}
