// Command bpsd is the live observability daemon: it runs a simulated
// workload — a synthetic sequential read by default, or a replay of
// ingested Darshan-style logs — with the streaming window estimator and
// the online burst forecaster attached, and serves the run's state over
// HTTP while it executes:
//
//	/metrics   Prometheus text exposition (registry + latest window + forecasts)
//	/windows   JSON window series (BPS, bandwidth, IOPS, ARPT, utilization)
//	/forecast  JSON per-series forecasts, model selection, and burst alerts
//	/stream    Server-Sent Events: windows and alerts as they close
//
// Serving is timing-neutral: the exported snapshots are built on sampler
// ticks inside the simulation without consuming simulated time, so a run
// under bpsd produces bit-identical metrics to the same run without it.
// Simulated runs complete far faster than the I/O they model; -pace adds
// wall-clock delay per sampler tick so the stream is observable in human
// time (simulated results are unaffected).
//
// Usage:
//
//	bpsd [-addr :8090] [-stack hddx4] [-seed 1] [-window 0.01] [-sample 0.001]
//	     [-pace 0] [-loop] [-burst-k 2.5] [-fault-rate 0] [LOGFILE...]
//
// With log file arguments the workload is an ingested replay (see the
// README's ingestion format: CSV segment tables or JSONL); without, a
// -procs × -mb sequential read. -loop reruns the workload forever, so
// the endpoints stay live; otherwise bpsd serves the final state until
// interrupted.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"bps"
	"bps/internal/obs"
	"bps/internal/obs/forecast"
	"bps/internal/obs/serve"
	"bps/internal/sim"
)

func main() {
	addr := flag.String("addr", ":8090", "HTTP listen address")
	stack := flag.String("stack", "hddx4", "simulated stack: hdd, ssd, hddxN, ssdxN (N servers)")
	seed := flag.Int64("seed", 1, "simulation seed (equal seeds give identical runs)")
	window := flag.Float64("window", 0.01, "streaming estimator window width in seconds")
	sample := flag.Float64("sample", 0.001, "sampler tick interval in seconds (drives snapshot publication)")
	pace := flag.Duration("pace", 0, "wall-clock delay per sampler tick (makes the stream observable; simulated time unaffected)")
	loop := flag.Bool("loop", false, "rerun the workload forever instead of serving the final state")
	burstK := flag.Float64("burst-k", 2.5, "burst alert threshold: observed or forecast rate above k×baseline")
	faultRate := flag.Float64("fault-rate", 0, "inject faults at this rate into the stack")
	procs := flag.Int("procs", 4, "synthetic workload: process count (ignored with log files)")
	mb := flag.Int64("mb", 64, "synthetic workload: MiB per process (ignored with log files)")
	record := flag.Int64("record", 1<<20, "synthetic workload: record size in bytes (ignored with log files)")
	flag.Parse()

	if err := run(os.Stdout, flag.Args(), options{
		addr: *addr, stack: *stack, seed: *seed,
		window: *window, sample: *sample, pace: *pace, loop: *loop,
		burstK: *burstK, faultRate: *faultRate,
		procs: *procs, mb: *mb, record: *record,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "bpsd:", err)
		os.Exit(1)
	}
}

type options struct {
	addr      string
	stack     string
	seed      int64
	window    float64
	sample    float64
	pace      time.Duration
	loop      bool
	burstK    float64
	faultRate float64
	procs     int
	mb        int64
	record    int64
}

func run(w io.Writer, logs []string, opts options) error {
	storage, err := parseStack(opts.stack)
	if err != nil {
		return err
	}
	storage.FaultRate = opts.faultRate

	var ioLog *bps.IOLog
	label := fmt.Sprintf("seqread %d×%dMiB on %s", opts.procs, opts.mb, opts.stack)
	if len(logs) > 0 {
		if ioLog, err = bps.ReadLogs(logs...); err != nil {
			return err
		}
		label = fmt.Sprintf("replay of %s on %s (%d segments)",
			strings.Join(logs, ","), opts.stack, ioLog.Len())
	}

	pub := serve.NewPublisher(label, forecast.Config{BurstK: opts.burstK})
	srv, err := serve.Start(opts.addr, pub)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Fprintf(w, "bpsd: serving %s on http://%s (/metrics /windows /forecast /stream)\n", label, srv.Addr())

	hook := pub.Hook()
	tick := hook
	if opts.pace > 0 {
		tick = func(now sim.Time, o *obs.Observer) {
			hook(now, o)
			time.Sleep(opts.pace)
		}
	}
	cfg := bps.RunConfig{
		Storage: storage,
		Seed:    opts.seed,
		Observe: &bps.ObserveOptions{
			SampleEvery: sim.Time(opts.sample * float64(sim.Second)),
			WindowEvery: sim.Time(opts.window * float64(sim.Second)),
			Tick:        tick,
		},
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	for iter := 0; ; iter++ {
		var rep bps.RunReport
		if ioLog != nil {
			rep, err = bps.ReplayLog(cfg, ioLog)
		} else {
			rep, err = bps.SimulateSequentialRead(cfg, opts.procs, opts.mb<<20, opts.record)
		}
		if err != nil {
			return err
		}
		m := rep.Metrics
		fmt.Fprintf(w, "bpsd: run %d done: B=%d T=%.6fs BPS=%.2f blk/s IOPS=%.2f BW=%.2f MB/s alerts=%d\n",
			iter, m.Blocks, m.IOTime.Seconds(), m.BPS(), m.IOPS(), m.Bandwidth()/1e6,
			len(pub.Tracker().Alerts()))
		if !opts.loop {
			break
		}
		select {
		case <-stop:
			return nil
		default:
		}
		// The publisher detects the next run's fresh observer and
		// restarts its window feed on the first tick.
	}

	fmt.Fprintln(w, "bpsd: serving final state; interrupt to exit")
	<-stop
	return nil
}

// parseStack interprets hdd, ssd, hddxN, ssdxN (same grammar as
// bpstrace -replay).
func parseStack(s string) (bps.Storage, error) {
	media := bps.HDD
	rest := s
	switch {
	case strings.HasPrefix(s, "hdd"):
		rest = strings.TrimPrefix(s, "hdd")
	case strings.HasPrefix(s, "ssd"):
		media = bps.SSD
		rest = strings.TrimPrefix(s, "ssd")
	default:
		return bps.Storage{}, fmt.Errorf("unknown stack %q (hdd, ssd, hddxN, ssdxN)", s)
	}
	if rest == "" {
		return bps.Storage{Media: media}, nil
	}
	if !strings.HasPrefix(rest, "x") {
		return bps.Storage{}, fmt.Errorf("unknown stack %q (hdd, ssd, hddxN, ssdxN)", s)
	}
	n, err := strconv.Atoi(rest[1:])
	if err != nil || n < 1 {
		return bps.Storage{}, fmt.Errorf("bad server count in %q", s)
	}
	return bps.Storage{Media: media, Servers: n, SharedFile: true}, nil
}
