package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"bps"
	"bps/internal/experiments"
	"bps/internal/obs/serve"
)

// Job states. A job is queued on POST, claimed into a batch by the
// scheduler (running), and ends done, failed, or cancelled.
const (
	stateQueued    = "queued"
	stateRunning   = "running"
	stateDone      = "done"
	stateFailed    = "failed"
	stateCancelled = "cancelled"
)

// jobSubmit is the POST /jobs body: the tenant's identity and service
// contract plus its sequential workload. Zero workload fields inherit
// the daemon's -procs/-mb/-record defaults.
type jobSubmit struct {
	Tenant      string  `json:"tenant"`
	Priority    int     `json:"priority"`
	BPSFloor    float64 `json:"bps_floor,omitempty"`
	Procs       int     `json:"procs,omitempty"`
	MB          int64   `json:"mb,omitempty"`
	RecordBytes int64   `json:"record_bytes,omitempty"`
	Write       bool    `json:"write,omitempty"`
}

// jobResult is a finished job's measured outcome: the tenant's paper
// metrics plus the controller's per-tenant QoS counters.
type jobResult struct {
	Blocks        int64   `json:"blocks"`
	Ops           int64   `json:"ops"`
	ExecS         float64 `json:"exec_s"`
	BPS           float64 `json:"bps"`
	IOPS          float64 `json:"iops"`
	BandwidthMBps float64 `json:"bandwidth_mb_s"`
	ARPTs         float64 `json:"arpt_s"`
	Errors        int     `json:"errors"`
	QoSDelayed    int64   `json:"qos_delayed"`
	QoSShed       int64   `json:"qos_shed"`
	QoSRisk       float64 `json:"qos_risk"`
}

// job is one submission's full lifecycle, as served by GET /jobs/{id}.
type job struct {
	ID int `json:"id"`
	jobSubmit
	State  string     `json:"state"`
	Batch  int        `json:"batch,omitempty"` // 1-based batch index once scheduled
	Error  string     `json:"error,omitempty"`
	Result *jobResult `json:"result,omitempty"`
}

// jobManager owns the bounded submission queue and the batch scheduler.
// Submissions arriving within one batch window run as tenants of a
// single multi-tenant simulation — that is what makes them contend (and
// the QoS controller arbitrate); lone submissions run solo.
type jobManager struct {
	opts    options
	storage bps.Storage
	observe func() *bps.ObserveOptions // fresh per batch (shares the publisher hook)
	out     io.Writer

	mu       sync.Mutex
	jobs     map[int]*job
	queue    []*job // queued jobs in arrival order
	nextID   int
	batches  int
	running  int
	done     int
	failed   int
	draining bool

	lastReport *bps.QoSReport // most recent batch's controller report

	wake chan struct{} // signals the scheduler: work or drain
	idle chan struct{} // closed when the scheduler exits (drained)
}

func newJobManager(opts options, storage bps.Storage, observe func() *bps.ObserveOptions, out io.Writer) *jobManager {
	return &jobManager{
		opts:    opts,
		storage: storage,
		observe: observe,
		out:     out,
		jobs:    make(map[int]*job),
		nextID:  1,
		wake:    make(chan struct{}, 1),
		idle:    make(chan struct{}),
	}
}

// start launches the batch scheduler. Call it only once the daemon's
// base run has finished: the publisher serves one run at a time, so
// batches must not interleave with it.
func (m *jobManager) start() { go m.loop() }

// drain stops accepting submissions, lets the scheduler finish every
// job already accepted, and waits up to grace for it to go idle. Jobs
// still unfinished when grace expires are failed.
func (m *jobManager) drain(grace time.Duration) error {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
	m.signal()
	select {
	case <-m.idle:
		return nil
	case <-time.After(grace):
		m.mu.Lock()
		for _, j := range m.queue {
			j.State = stateFailed
			j.Error = "daemon shut down before the job ran"
		}
		n := len(m.queue) + m.running
		m.queue = nil
		m.mu.Unlock()
		return fmt.Errorf("drain: %d jobs unfinished after %v grace", n, grace)
	}
}

func (m *jobManager) signal() {
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// loop is the scheduler: wait for work, hold the batch window open so
// concurrent submissions coalesce into one multi-tenant run, execute,
// repeat; exit when draining with nothing left.
func (m *jobManager) loop() {
	defer close(m.idle)
	for {
		m.mu.Lock()
		empty, draining := len(m.queue) == 0, m.draining
		m.mu.Unlock()
		if empty {
			if draining {
				return
			}
			<-m.wake
			continue
		}
		if m.opts.batchWait > 0 && !draining {
			time.Sleep(m.opts.batchWait)
		}
		if batch := m.takeBatch(); len(batch) > 0 {
			m.runBatch(batch)
		}
	}
}

// takeBatch claims queued jobs for the next run. Tenant names must be
// unique within a run, so a second job for a tenant already in the
// batch stays queued for the next one.
func (m *jobManager) takeBatch() []*job {
	m.mu.Lock()
	defer m.mu.Unlock()
	var batch []*job
	taken := make(map[string]bool)
	var rest []*job
	m.batches++
	for _, j := range m.queue {
		if taken[j.Tenant] {
			rest = append(rest, j)
			continue
		}
		taken[j.Tenant] = true
		j.State = stateRunning
		j.Batch = m.batches
		batch = append(batch, j)
	}
	m.queue = rest
	m.running += len(batch)
	return batch
}

// runBatch executes one batch as a multi-tenant simulation under the
// QoS controller. The engine seed derives from (daemon seed, batch
// index), so a daemon restarted with the same seed and submission
// sequence reproduces the same runs.
func (m *jobManager) runBatch(batch []*job) {
	specs := make([]bps.TenantSpec, len(batch))
	for i, j := range batch {
		specs[i] = bps.TenantSpec{
			Tenant:          bps.QoSTenant{Name: j.Tenant, Priority: j.Priority, BPSFloor: j.BPSFloor},
			Processes:       j.Procs,
			BytesPerProcess: j.MB << 20,
			RecordSize:      j.RecordBytes,
			Write:           j.Write,
		}
	}
	cfg := bps.RunConfig{
		Storage: m.storage,
		Seed:    experiments.DeriveSeed(m.opts.seed, "bpsd-jobs", strconv.Itoa(batch[0].Batch)),
		Observe: m.observe(),
	}
	_, per, rep, err := bps.SimulateTenants(cfg, bps.QoSConfig{Enabled: true}, specs...)

	m.mu.Lock()
	defer m.mu.Unlock()
	m.running -= len(batch)
	if err != nil {
		m.failed += len(batch)
		for _, j := range batch {
			j.State = stateFailed
			j.Error = err.Error()
		}
		fmt.Fprintf(m.out, "bpsd: batch %d (%d jobs) failed: %v\n", batch[0].Batch, len(batch), err)
		return
	}
	m.done += len(batch)
	for i, j := range batch {
		res := &jobResult{
			Blocks:        per[i].Metrics.Blocks,
			Ops:           per[i].Metrics.Ops,
			ExecS:         per[i].Metrics.ExecTime.Seconds(),
			BPS:           per[i].Metrics.BPS(),
			IOPS:          per[i].Metrics.IOPS(),
			BandwidthMBps: per[i].Metrics.Bandwidth() / 1e6,
			ARPTs:         per[i].Metrics.ARPT(),
			Errors:        per[i].Errors,
		}
		for _, tr := range rep.Tenants {
			if tr.Name == j.Tenant {
				res.QoSDelayed = tr.Delayed
				res.QoSShed = tr.Shed
				res.QoSRisk = tr.Score.Risk
			}
		}
		j.State = stateDone
		j.Result = res
	}
	m.lastReport = rep
	names := make([]string, len(batch))
	for i, j := range batch {
		names[i] = j.Tenant
	}
	fmt.Fprintf(m.out, "bpsd: batch %d done: tenants=%s activations=%d\n",
		batch[0].Batch, strings.Join(names, ","), rep.Activations)
}

// --- HTTP handlers ---------------------------------------------------

// mount registers the jobs API on mux (Go 1.22 method+wildcard
// patterns).
func (m *jobManager) mount(mux *http.ServeMux, pub *serve.Publisher) {
	mux.HandleFunc("POST /jobs", m.handleSubmit)
	mux.HandleFunc("GET /jobs", m.handleList)
	mux.HandleFunc("GET /jobs/{id}", m.handleGet)
	mux.HandleFunc("DELETE /jobs/{id}", m.handleDelete)
	mux.HandleFunc("GET /qos", m.handleQoS)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		m.handleHealthz(w, r, pub)
	})
}

// submitBufs pools the request-body buffers of the POST /jobs hot path.
// A per-request json.Decoder allocates its own read buffer and scanner
// state every submit; reading into a pooled buffer and unmarshalling
// from it keeps a submit-heavy client from turning the handler into
// steady allocation churn. Buffers that grew past submitBufKeep (a
// pathological oversized body) are dropped rather than pinned in the
// pool.
var submitBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const submitBufKeep = 64 << 10

// decodeSubmit reads and unmarshals one POST /jobs body through the
// buffer pool, enforcing the same 1 MiB cap as before.
func decodeSubmit(w http.ResponseWriter, r *http.Request, js *jobSubmit) error {
	buf := submitBufs.Get().(*bytes.Buffer)
	buf.Reset()
	defer func() {
		if buf.Cap() <= submitBufKeep {
			submitBufs.Put(buf)
		}
	}()
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, 1<<20)); err != nil {
		return err
	}
	return json.Unmarshal(buf.Bytes(), js)
}

func (m *jobManager) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var js jobSubmit
	if err := decodeSubmit(w, r, &js); err != nil {
		http.Error(w, "bad job body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if js.Procs == 0 {
		js.Procs = m.opts.procs
	}
	if js.MB == 0 {
		js.MB = m.opts.mb
	}
	if js.RecordBytes == 0 {
		js.RecordBytes = m.opts.record
	}
	if err := validateSubmit(js); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		http.Error(w, "draining: no new jobs", http.StatusServiceUnavailable)
		return
	}
	if len(m.queue) >= m.opts.maxJobs {
		m.mu.Unlock()
		// A queue slot frees when the next batch is claimed; the batch
		// window is the honest earliest retry.
		retry := int(m.opts.batchWait / time.Second)
		if retry < 1 {
			retry = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		http.Error(w, fmt.Sprintf("job queue full (%d queued)", m.opts.maxJobs), http.StatusTooManyRequests)
		return
	}
	j := &job{ID: m.nextID, jobSubmit: js, State: stateQueued}
	m.nextID++
	m.jobs[j.ID] = j
	m.queue = append(m.queue, j)
	resp := *j
	m.mu.Unlock()
	m.signal()

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(resp)
}

func validateSubmit(js jobSubmit) error {
	switch {
	case js.Tenant == "":
		return fmt.Errorf("tenant is required")
	case len(js.Tenant) > 64 || strings.ContainsAny(js.Tenant, " /\t\n"):
		return fmt.Errorf("tenant must be ≤64 chars with no spaces or slashes")
	case js.BPSFloor < 0:
		return fmt.Errorf("bps_floor must be ≥ 0")
	case js.Procs < 1 || js.Procs > 1024:
		return fmt.Errorf("procs must be in [1, 1024]")
	case js.MB < 1 || js.MB > 1<<20:
		return fmt.Errorf("mb must be in [1, 1048576]")
	case js.RecordBytes < 512 || js.RecordBytes > 1<<30:
		return fmt.Errorf("record_bytes must be in [512, 1 GiB]")
	}
	return nil
}

// jobByID resolves the {id} path value; nil means the response is
// already written.
func (m *jobManager) jobByID(w http.ResponseWriter, r *http.Request) *job {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		http.Error(w, "bad job id", http.StatusBadRequest)
		return nil
	}
	m.mu.Lock()
	j := m.jobs[id]
	m.mu.Unlock()
	if j == nil {
		http.Error(w, "no such job", http.StatusNotFound)
		return nil
	}
	return j
}

func (m *jobManager) handleGet(w http.ResponseWriter, r *http.Request) {
	j := m.jobByID(w, r)
	if j == nil {
		return
	}
	m.mu.Lock()
	resp := *j
	m.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func (m *jobManager) handleList(w http.ResponseWriter, r *http.Request) {
	m.mu.Lock()
	list := make([]job, 0, len(m.jobs))
	for _, j := range m.jobs {
		list = append(list, *j)
	}
	m.mu.Unlock()
	sort.Slice(list, func(i, k int) bool { return list[i].ID < list[k].ID })
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(list)
}

func (m *jobManager) handleDelete(w http.ResponseWriter, r *http.Request) {
	j := m.jobByID(w, r)
	if j == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if j.State != stateQueued {
		http.Error(w, fmt.Sprintf("job is %s, only queued jobs can be cancelled", j.State), http.StatusConflict)
		return
	}
	j.State = stateCancelled
	for i, q := range m.queue {
		if q == j {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			break
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleQoS serves the most recent batch's full controller report:
// per-tenant window series, throttle counters, interference scores.
func (m *jobManager) handleQoS(w http.ResponseWriter, r *http.Request) {
	m.mu.Lock()
	rep := m.lastReport
	m.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if rep == nil {
		io.WriteString(w, "{}\n")
		return
	}
	json.NewEncoder(w).Encode(rep)
}

// daemonHealth is bpsd's /healthz: the publisher's liveness and stream
// backpressure view plus the job queue's state.
type daemonHealth struct {
	serve.Health
	Jobs jobsHealth `json:"jobs"`
}

type jobsHealth struct {
	Queued   int  `json:"queued"`
	Running  int  `json:"running"`
	Done     int  `json:"done"`
	Failed   int  `json:"failed"`
	Batches  int  `json:"batches"`
	MaxJobs  int  `json:"max_jobs"`
	Draining bool `json:"draining"`
}

func (m *jobManager) handleHealthz(w http.ResponseWriter, r *http.Request, pub *serve.Publisher) {
	m.mu.Lock()
	h := daemonHealth{
		Health: pub.Healthz(),
		Jobs: jobsHealth{
			Queued:   len(m.queue),
			Running:  m.running,
			Done:     m.done,
			Failed:   m.failed,
			Batches:  m.batches,
			MaxJobs:  m.opts.maxJobs,
			Draining: m.draining,
		},
	}
	if m.draining {
		h.Status = "draining"
	}
	m.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h)
}
