// Command bpstrace computes the four I/O metrics — IOPS, bandwidth,
// ARPT, and BPS — from I/O trace files, implementing the BPS paper's
// measurement methodology (§III.B) as a standalone toolkit: records are
// gathered across all given traces (all processes, all applications),
// B is the total required blocks, and T is the overlapped I/O time.
//
// Usage:
//
//	bpstrace [-format auto|binary|csv|jsonl|blkparse] [-moved BYTES] [-exec SECONDS] FILE...
//
// Trace files hold one record per application access: {pid, blocks,
// start_ns, end_ns}. The binary format is the paper's 32-byte record;
// CSV (header pid,blocks,start_ns,end_ns) and JSONL are also accepted.
// When -moved is omitted, bandwidth uses the required bytes (no
// optimization-induced extra movement assumed); when -exec is omitted,
// the trace span (first start to last end) stands in for application
// execution time.
//
// Observability outputs:
//
//	bpstrace -trace-out out.json trace.bin
//	    exports the application accesses as Chrome trace-event JSON
//	    (open in Perfetto or chrome://tracing): one timeline row per
//	    process, one slice per access.
//
//	bpstrace -replay hddx4 -trace-out out.json -metrics-out metrics.csv trace.bin
//	    replays the trace on a simulated four-server HDD cluster with the
//	    observability subsystem attached; out.json then also contains the
//	    per-layer spans (pfs request handling, network transfers, device
//	    service) underneath the application rows, and metrics.csv holds
//	    the per-layer metric registry (counters, histograms, utilization
//	    probes).
//
//	bpstrace -replay hddx4 -fault-rate 0.01 trace.bin
//	    what-if under degradation: the same replay with faults injected
//	    at every layer (device errors/stragglers, link drops/delays,
//	    server fail/slow windows) while the clients ride through on the
//	    retry/failover recovery policy.
//
//	bpstrace -replay hdd,ssd,hddx4,ssdx4 trace.bin
//	    what-if comparison: replays the trace on every listed stack,
//	    fanned out across -parallel workers (default NumCPU), printing
//	    the metrics in list order. Output is bit-identical for any
//	    -parallel value; -trace-out/-metrics-out need a single stack.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"bps"
	"bps/internal/obs/forecast"
	"bps/internal/obs/serve"
	"bps/internal/report"
	"bps/internal/sim"
)

func main() {
	format := flag.String("format", "auto", "trace format: auto, binary, csv, jsonl, blkparse")
	moved := flag.Int64("moved", 0, "bytes actually moved at the file-system level (default: required bytes)")
	exec := flag.Float64("exec", 0, "application execution time in seconds (default: trace span)")
	perPID := flag.Bool("per-pid", false, "also print a per-process breakdown")
	window := flag.Float64("window", 0, "also print a windowed time series with this window in seconds")
	latency := flag.Bool("latency", false, "also print the response-time distribution and histogram")
	replay := flag.String("replay", "", "also replay the trace on simulated stacks (comma-separated what-if list): hdd, ssd, hddxN, or ssdxN (N servers)")
	faultRate := flag.Float64("fault-rate", 0, "inject faults at this rate into every -replay stack (client recovery is enabled automatically)")
	shards := flag.Int("shards", 0, "engine shard workers for -replay cluster stacks: 0 = classic single-calendar engine, N = sharded engine with N workers, -1 = GOMAXPROCS")
	parallel := flag.Int("parallel", runtime.NumCPU(), "worker goroutines for multi-stack replays (results are identical for any value)")
	traceOut := flag.String("trace-out", "", "write Chrome trace-event JSON here (per-layer spans when combined with -replay)")
	metricsOut := flag.String("metrics-out", "", "write the replay's per-layer metrics as CSV here (requires a single -replay stack)")
	attribOut := flag.String("attrib-out", "", "run the replay's critical-path profiler, print the per-layer blame table, and write folded flame-graph stacks here (requires a single -replay stack)")
	windows := flag.Float64("windows", 0, "streaming windowed estimator width in seconds for the replay (requires a single -replay stack; distinct from -window, which bins the input trace post hoc)")
	windowsOut := flag.String("windows-out", "", "write the replay's window series as CSV here (requires -windows)")
	serveAddr := flag.String("serve", "", "serve the replay's live observability on this address (/metrics /windows /forecast /stream); requires a single -replay stack, defaults -windows to 0.01")
	forecastOut := flag.Bool("forecast", false, "run the online burst forecaster over the replay's window series and print per-window forecasts and alerts (requires -windows)")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "bpstrace: no trace files given")
		flag.Usage()
		os.Exit(2)
	}
	if (*serveAddr != "" || *forecastOut) && *windows == 0 {
		*windows = 0.01
	}
	opts := options{
		format:        *format,
		moved:         *moved,
		execSeconds:   *exec,
		perPID:        *perPID,
		windowSeconds: *window,
		latency:       *latency,
		replay:        *replay,
		faultRate:     *faultRate,
		shards:        *shards,
		parallel:      *parallel,
		traceOut:      *traceOut,
		metricsOut:    *metricsOut,
		attribOut:     *attribOut,
		windowsEvery:  *windows,
		windowsOut:    *windowsOut,
		serveAddr:     *serveAddr,
		forecast:      *forecastOut,
	}
	if err := run(os.Stdout, flag.Args(), opts); err != nil {
		fmt.Fprintln(os.Stderr, "bpstrace:", err)
		os.Exit(1)
	}
}

// options collects the report knobs.
type options struct {
	format        string
	moved         int64
	execSeconds   float64
	perPID        bool
	windowSeconds float64
	latency       bool
	replay        string
	faultRate     float64
	shards        int
	parallel      int
	traceOut      string
	metricsOut    string
	attribOut     string
	windowsEvery  float64
	windowsOut    string
	serveAddr     string
	forecast      bool
}

func run(w io.Writer, files []string, opts options) error {
	var records []bps.Record
	for _, name := range files {
		recs, err := readFile(name, opts.format)
		if err != nil {
			return err
		}
		records = append(records, recs...)
	}
	if len(records) == 0 {
		return fmt.Errorf("no records in %d file(s)", len(files))
	}

	required := int64(0)
	for _, r := range records {
		required += r.Blocks * bps.BlockSize
	}
	moved := opts.moved
	if moved == 0 {
		moved = required
	}
	execTime := span(records)
	if opts.execSeconds > 0 {
		execTime = bps.Time(opts.execSeconds * float64(bps.Second))
	}

	m := bps.ComputeMetrics(records, moved, execTime)
	printMetrics(w, "all", m)
	if opts.perPID {
		printPerPID(w, records)
	}
	if opts.windowSeconds > 0 {
		if err := printTimeline(w, records, opts.windowSeconds); err != nil {
			return err
		}
	}
	if opts.latency {
		d := bps.NewLatencyDist(records)
		fmt.Fprintf(w, "[%s]\n", d)
		fmt.Fprint(w, d.Histogram(40))
	}
	if opts.metricsOut != "" && opts.replay == "" {
		return fmt.Errorf("-metrics-out needs -replay: per-layer metrics only exist for a simulated run")
	}
	if (opts.attribOut != "" || opts.windowsEvery > 0) && opts.replay == "" {
		return fmt.Errorf("-attrib-out/-windows need -replay: attribution only exists for a simulated run")
	}
	if opts.serveAddr != "" && opts.replay == "" {
		return fmt.Errorf("-serve needs -replay: live observability only exists for a simulated run")
	}
	if opts.windowsOut != "" && opts.windowsEvery == 0 {
		return fmt.Errorf("-windows-out needs -windows: no window series without the streaming estimator")
	}
	if opts.replay != "" {
		if err := printReplay(w, records, opts); err != nil {
			return err
		}
	} else if opts.traceOut != "" {
		// No simulation: export the application accesses themselves.
		if err := writeFile(opts.traceOut, func(f io.Writer) error {
			return bps.WriteChromeTrace(f, records)
		}); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote Chrome trace (app layer) to %s\n", opts.traceOut)
	}
	return nil
}

// writeFile creates name and runs fn on it, closing carefully.
func writeFile(name string, fn func(io.Writer) error) error {
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", name, err)
	}
	return f.Close()
}

// printReplay re-runs the trace on one or more simulated stacks (a
// comma-separated what-if list, fanned out across opts.parallel workers)
// and prints each stack's metrics in list order. With a single stack,
// -trace-out/-metrics-out attach the observability subsystem and write
// the collected data.
func printReplay(w io.Writer, records []bps.Record, opts options) error {
	stacks := strings.Split(opts.replay, ",")
	observing := opts.traceOut != "" || opts.metricsOut != "" ||
		opts.attribOut != "" || opts.windowsEvery > 0 || opts.serveAddr != ""
	if observing && len(stacks) > 1 {
		return fmt.Errorf("-trace-out/-metrics-out/-attrib-out/-windows/-serve need a single -replay stack, got %d", len(stacks))
	}
	cfgs := make([]bps.RunConfig, len(stacks))
	for i, stack := range stacks {
		storage, err := parseStack(stack)
		if err != nil {
			return err
		}
		storage.FaultRate = opts.faultRate
		cfgs[i] = bps.RunConfig{Storage: storage, Seed: 1, Shards: opts.shards}
	}
	if observing {
		cfgs[0].Observe = &bps.ObserveOptions{
			ChromeTrace: opts.traceOut != "",
			SampleEvery: sim.Millisecond,
			Attribution: opts.attribOut != "",
			WindowEvery: sim.Time(opts.windowsEvery * float64(sim.Second)),
		}
		if opts.serveAddr != "" {
			pub := serve.NewPublisher("bpstrace replay on "+stacks[0], forecast.Config{})
			srv, err := serve.Start(opts.serveAddr, pub)
			if err != nil {
				return err
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "bpstrace: serving live observability on http://%s\n", srv.Addr())
			cfgs[0].Observe.Tick = pub.Hook()
		}
	}
	reps := make([]bps.RunReport, len(stacks))
	if err := bps.SimulateEach(opts.parallel, len(stacks), func(i int) error {
		rep, err := bps.ReplayTrace(cfgs[i], records)
		reps[i] = rep
		return err
	}); err != nil {
		return err
	}
	for i, stack := range stacks {
		printMetrics(w, "replayed on "+stack, reps[i].Metrics)
		if reps[i].Errors > 0 {
			fmt.Fprintf(w, "  (%d replayed accesses failed)\n", reps[i].Errors)
		}
	}
	if opts.traceOut != "" {
		if err := writeFile(opts.traceOut, reps[0].Obs.WriteChromeTrace); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote Chrome trace (app + sim layers) to %s\n", opts.traceOut)
	}
	if opts.metricsOut != "" {
		if err := writeFile(opts.metricsOut, func(f io.Writer) error {
			return report.WriteObsCSV(f, reps[0].Obs.Registry())
		}); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote per-layer metrics to %s\n", opts.metricsOut)
	}
	if opts.attribOut != "" || opts.windowsEvery > 0 {
		rep := reps[0].Attribution
		report.WriteAttribution(w, rep)
		if opts.attribOut != "" {
			if err := writeFile(opts.attribOut, rep.WriteFolded); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote folded stacks to %s\n", opts.attribOut)
		}
		if opts.windowsOut != "" {
			if err := writeFile(opts.windowsOut, func(f io.Writer) error {
				return report.WriteWindowsCSV(f, rep)
			}); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote window series to %s\n", opts.windowsOut)
		}
		if opts.forecast {
			report.WriteForecast(w, rep, forecast.Config{})
		}
	}
	return nil
}

// parseStack interprets hdd, ssd, hddxN, ssdxN.
func parseStack(s string) (bps.Storage, error) {
	media := bps.HDD
	rest := s
	switch {
	case strings.HasPrefix(s, "hdd"):
		rest = strings.TrimPrefix(s, "hdd")
	case strings.HasPrefix(s, "ssd"):
		media = bps.SSD
		rest = strings.TrimPrefix(s, "ssd")
	default:
		return bps.Storage{}, fmt.Errorf("unknown stack %q (hdd, ssd, hddxN, ssdxN)", s)
	}
	if rest == "" {
		return bps.Storage{Media: media}, nil
	}
	if !strings.HasPrefix(rest, "x") {
		return bps.Storage{}, fmt.Errorf("unknown stack %q (hdd, ssd, hddxN, ssdxN)", s)
	}
	n, err := strconv.Atoi(rest[1:])
	if err != nil || n < 1 {
		return bps.Storage{}, fmt.Errorf("bad server count in %q", s)
	}
	return bps.Storage{Media: media, Servers: n, SharedFile: true}, nil
}

func printTimeline(w io.Writer, records []bps.Record, windowSeconds float64) error {
	points, err := bps.Timeline(records, bps.Time(windowSeconds*float64(bps.Second)))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "[timeline, window %.3fs]\n", windowSeconds)
	fmt.Fprintf(w, "  %8s %10s %10s %8s %14s %12s\n", "window", "ops", "blocks", "util", "BPS(blk/s)", "IOPS")
	for _, p := range points {
		fmt.Fprintf(w, "  %8.3f %10d %10d %7.1f%% %14.0f %12.1f\n",
			p.Start.Seconds(), p.Ops, p.Blocks, 100*p.Utilization(), p.BPS(), p.IOPS())
	}
	return nil
}

// readFile loads one trace file, sniffing the format from the extension
// when format is "auto" (.csv, .jsonl/.json; anything else is binary).
func readFile(name, format string) ([]bps.Record, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	if format == "auto" {
		switch strings.ToLower(filepath.Ext(name)) {
		case ".csv":
			format = "csv"
		case ".jsonl", ".json":
			format = "jsonl"
		case ".blkparse", ".blktrace":
			format = "blkparse"
		default:
			format = "binary"
		}
	}
	var recs []bps.Record
	switch format {
	case "binary":
		recs, err = bps.ReadTrace(f)
	case "csv":
		recs, err = bps.ReadTraceCSV(f)
	case "jsonl":
		recs, err = bps.ReadTraceJSONL(f)
	case "blkparse":
		var dropped int
		recs, dropped, err = bps.ParseBlkparse(f)
		if dropped > 0 {
			fmt.Fprintf(os.Stderr, "bpstrace: %s: %d accesses never completed, dropped\n", name, dropped)
		}
	default:
		return nil, fmt.Errorf("unknown format %q (binary, csv, jsonl, blkparse)", format)
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return recs, nil
}

func span(records []bps.Record) bps.Time {
	lo, hi := records[0].Start, records[0].End
	for _, r := range records[1:] {
		if r.Start < lo {
			lo = r.Start
		}
		if r.End > hi {
			hi = r.End
		}
	}
	return hi - lo
}

func printMetrics(w io.Writer, label string, m bps.Metrics) {
	fmt.Fprintf(w, "[%s]\n", label)
	fmt.Fprintf(w, "  accesses (N):        %d\n", m.Ops)
	fmt.Fprintf(w, "  required blocks (B): %d (%d bytes)\n", m.Blocks, m.Blocks*bps.BlockSize)
	fmt.Fprintf(w, "  moved bytes (M):     %d\n", m.MovedBytes)
	fmt.Fprintf(w, "  overlapped T:        %.6f s\n", m.IOTime.Seconds())
	fmt.Fprintf(w, "  exec time:           %.6f s\n", m.ExecTime.Seconds())
	fmt.Fprintf(w, "  IOPS:                %.2f ops/s\n", m.IOPS())
	fmt.Fprintf(w, "  bandwidth:           %.2f MB/s\n", m.Bandwidth()/1e6)
	fmt.Fprintf(w, "  ARPT:                %.6f s\n", m.ARPT())
	fmt.Fprintf(w, "  BPS:                 %.2f blocks/s\n", m.BPS())
}

func printPerPID(w io.Writer, records []bps.Record) {
	byPID := make(map[int64][]bps.Record)
	for _, r := range records {
		byPID[r.PID] = append(byPID[r.PID], r)
	}
	pids := make([]int64, 0, len(byPID))
	for pid := range byPID {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, pid := range pids {
		recs := byPID[pid]
		var required int64
		for _, r := range recs {
			required += r.Blocks * bps.BlockSize
		}
		m := bps.ComputeMetrics(recs, required, span(recs))
		printMetrics(w, fmt.Sprintf("pid %d", pid), m)
	}
}
