package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bps"
)

// writeTempTrace writes records in the given format under a temp dir.
func writeTempTrace(t *testing.T, name string, records []bps.Record, write func(*os.File) error) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := write(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func sampleRecords() []bps.Record {
	return []bps.Record{
		{PID: 1, Blocks: 128, Start: 0, End: 10 * bps.Millisecond},
		{PID: 2, Blocks: 128, Start: 0, End: 10 * bps.Millisecond},
		{PID: 1, Blocks: 64, Start: 20 * bps.Millisecond, End: 25 * bps.Millisecond},
	}
}

func TestRunBinaryTrace(t *testing.T) {
	recs := sampleRecords()
	path := writeTempTrace(t, "t.bin", recs, func(f *os.File) error {
		return bps.WriteTrace(f, recs)
	})
	var out bytes.Buffer
	if err := run(&out, []string{path}, options{format: "auto"}); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"accesses (N):        3", "required blocks (B): 320", "BPS:"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	// T = union = 15ms (two concurrent 10ms + one 5ms after a gap).
	if !strings.Contains(s, "overlapped T:        0.015000 s") {
		t.Errorf("wrong T:\n%s", s)
	}
}

func TestRunCSVAndJSONLAutoDetect(t *testing.T) {
	recs := sampleRecords()
	csvPath := writeTempTrace(t, "t.csv", recs, func(f *os.File) error {
		return bps.WriteTraceCSV(f, recs)
	})
	jsonlPath := writeTempTrace(t, "t.jsonl", recs, func(f *os.File) error {
		return bps.WriteTraceJSONL(f, recs)
	})
	for _, path := range []string{csvPath, jsonlPath} {
		var out bytes.Buffer
		if err := run(&out, []string{path}, options{format: "auto"}); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if !strings.Contains(out.String(), "accesses (N):        3") {
			t.Errorf("%s: wrong output:\n%s", path, out.String())
		}
	}
}

func TestRunMergesMultipleFiles(t *testing.T) {
	recs := sampleRecords()
	p1 := writeTempTrace(t, "a.bin", recs[:2], func(f *os.File) error {
		return bps.WriteTrace(f, recs[:2])
	})
	p2 := writeTempTrace(t, "b.bin", recs[2:], func(f *os.File) error {
		return bps.WriteTrace(f, recs[2:])
	})
	var out bytes.Buffer
	if err := run(&out, []string{p1, p2}, options{format: "binary"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "accesses (N):        3") {
		t.Errorf("merge failed:\n%s", out.String())
	}
}

func TestRunPerPIDAndOverrides(t *testing.T) {
	recs := sampleRecords()
	path := writeTempTrace(t, "t.bin", recs, func(f *os.File) error {
		return bps.WriteTrace(f, recs)
	})
	var out bytes.Buffer
	opts := options{format: "binary", perPID: true, moved: 1 << 20, execSeconds: 2}
	if err := run(&out, []string{path}, opts); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "[pid 1]") || !strings.Contains(s, "[pid 2]") {
		t.Errorf("per-pid sections missing:\n%s", s)
	}
	if !strings.Contains(s, "moved bytes (M):     1048576") {
		t.Errorf("moved override ignored:\n%s", s)
	}
	if !strings.Contains(s, "exec time:           2.000000 s") {
		t.Errorf("exec override ignored:\n%s", s)
	}
}

func TestRunWindowAndLatency(t *testing.T) {
	recs := sampleRecords()
	path := writeTempTrace(t, "t.bin", recs, func(f *os.File) error {
		return bps.WriteTrace(f, recs)
	})
	var out bytes.Buffer
	if err := run(&out, []string{path}, options{format: "binary", windowSeconds: 0.01, latency: true}); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "[timeline, window 0.010s]") {
		t.Errorf("timeline missing:\n%s", s)
	}
	if !strings.Contains(s, "p99") {
		t.Errorf("latency summary missing:\n%s", s)
	}
}

func TestRunBlkparse(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.blkparse")
	content := "8,0 1 1 0.000100 42 D R 1000 + 8 [app]\n8,0 1 2 0.005100 42 C R 1000 + 8 [0]\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(&out, []string{path}, options{format: "auto"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "required blocks (B): 8") {
		t.Errorf("blkparse output:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(&bytes.Buffer{}, []string{"/nonexistent/file"}, options{format: "auto"}); err == nil {
		t.Error("missing file accepted")
	}
	empty := writeTempTrace(t, "empty.bin", nil, func(f *os.File) error { return nil })
	if err := run(&bytes.Buffer{}, []string{empty}, options{format: "binary"}); err == nil {
		t.Error("empty trace accepted")
	}
	if err := run(&bytes.Buffer{}, []string{empty}, options{format: "nope"}); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestSpanHelper(t *testing.T) {
	recs := []bps.Record{
		{Start: 10, End: 20},
		{Start: 5, End: 12},
		{Start: 18, End: 40},
	}
	if got := span(recs); got != 35 {
		t.Fatalf("span = %v, want 35", got)
	}
}

func TestParseStack(t *testing.T) {
	cases := []struct {
		in      string
		media   bps.Media
		servers int
		ok      bool
	}{
		{"hdd", bps.HDD, 0, true},
		{"ssd", bps.SSD, 0, true},
		{"hddx4", bps.HDD, 4, true},
		{"ssdx8", bps.SSD, 8, true},
		{"nvme", 0, 0, false},
		{"hddx0", 0, 0, false},
		{"hddy4", 0, 0, false},
	}
	for _, c := range cases {
		s, err := parseStack(c.in)
		if (err == nil) != c.ok {
			t.Errorf("parseStack(%q) err = %v", c.in, err)
			continue
		}
		if c.ok && (s.Media != c.media || s.Servers != c.servers) {
			t.Errorf("parseStack(%q) = %+v", c.in, s)
		}
	}
}

func TestRunReplay(t *testing.T) {
	recs := sampleRecords()
	path := writeTempTrace(t, "t.bin", recs, func(f *os.File) error {
		return bps.WriteTrace(f, recs)
	})
	var out bytes.Buffer
	if err := run(&out, []string{path}, options{format: "binary", replay: "ssd"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "[replayed on ssd]") {
		t.Errorf("replay section missing:\n%s", out.String())
	}
	if err := run(&out, []string{path}, options{format: "binary", replay: "bogus"}); err == nil {
		t.Error("bogus stack accepted")
	}
}
