package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseNsPerOp(t *testing.T) {
	in := strings.Join([]string{
		`{"Action":"start","Package":"bps/internal/sim"}`,
		`{"Action":"output","Package":"bps/internal/sim","Output":"goos: linux\n"}`,
		`{"Action":"output","Test":"BenchmarkEngineEventDispatch","Output":"34511456\t        31.07 ns/op\t       0 B/op\t       0 allocs/op\n"}`,
		`{"Action":"output","Test":"BenchmarkProcSleep","Output":" 2410411\t       498.8 ns/op\t       0 B/op\t       0 allocs/op\n"}`,
		`{"Action":"output","Test":"BenchmarkProcSleep","Output":"--- note without ns, op\n"}`,
		`{"Action":"pass","Package":"bps/internal/sim"}`,
	}, "\n") + "\n"
	got, err := parseNsPerOp(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
	if got["BenchmarkEngineEventDispatch"] != 31.07 {
		t.Errorf("dispatch = %v, want 31.07", got["BenchmarkEngineEventDispatch"])
	}
	if got["BenchmarkProcSleep"] != 498.8 {
		t.Errorf("sleep = %v, want 498.8", got["BenchmarkProcSleep"])
	}
}

func TestParseNsPerOpRejectsGarbage(t *testing.T) {
	if _, err := parseNsPerOp(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := parseNsPerOp(strings.NewReader(`{"Action":"output","Test":"B","Output":"x y ns/op\n"}` + "\n")); err == nil {
		t.Fatal("unparseable ns/op accepted")
	}
}

func TestParseNsPerOpEmpty(t *testing.T) {
	got, err := parseNsPerOp(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty input: %v, %v", got, err)
	}
}

func TestLoadTolerances(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tol.json")
	if err := os.WriteFile(path, []byte(`{"comment":"x","tolerances":{"BenchmarkA":0.35}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	tol, err := loadTolerances(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if tol["BenchmarkA"] != 0.35 {
		t.Fatalf("tolerances = %v", tol)
	}

	// The default path may be absent; an explicit one must exist.
	if tol, err := loadTolerances(filepath.Join(dir, "missing.json"), false); err != nil || tol != nil {
		t.Fatalf("missing default file: %v, %v", tol, err)
	}
	if _, err := loadTolerances(filepath.Join(dir, "missing.json"), true); err == nil {
		t.Fatal("missing explicit file accepted")
	}

	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"tolerances":{"BenchmarkA":0}}`), 0o644)
	if _, err := loadTolerances(bad, true); err == nil {
		t.Fatal("non-positive tolerance accepted")
	}
}

func TestCheckToleranceOverride(t *testing.T) {
	base := map[string]float64{"BenchmarkA": 100, "BenchmarkB": 100}
	fresh := map[string]float64{"BenchmarkA": 130, "BenchmarkB": 130} // +30% both
	guarded := []string{"BenchmarkA", "BenchmarkB"}

	// Global threshold 0.20: both regress.
	var out strings.Builder
	if !check(&out, base, fresh, guarded, 0.20, nil) {
		t.Fatal("30% regression passed the 20% threshold")
	}
	// An override on A alone lets it through while B still fails.
	out.Reset()
	if !check(&out, base, fresh, guarded, 0.20, map[string]float64{"BenchmarkA": 0.35}) {
		t.Fatal("B's regression was swallowed by A's override")
	}
	if !strings.Contains(out.String(), "tolerance +35%") {
		t.Fatalf("report does not show the override:\n%s", out.String())
	}
	// Overrides on both pass.
	both := map[string]float64{"BenchmarkA": 0.35, "BenchmarkB": 0.35}
	if check(io.Discard, base, fresh, guarded, 0.20, both) {
		t.Fatal("overridden regressions still failed")
	}
	// Missing benchmarks fail regardless.
	if !check(io.Discard, base, map[string]float64{}, guarded, 0.20, both) {
		t.Fatal("missing fresh results passed")
	}
}
