package main

import (
	"strings"
	"testing"
)

func TestParseNsPerOp(t *testing.T) {
	in := strings.Join([]string{
		`{"Action":"start","Package":"bps/internal/sim"}`,
		`{"Action":"output","Package":"bps/internal/sim","Output":"goos: linux\n"}`,
		`{"Action":"output","Test":"BenchmarkEngineEventDispatch","Output":"34511456\t        31.07 ns/op\t       0 B/op\t       0 allocs/op\n"}`,
		`{"Action":"output","Test":"BenchmarkProcSleep","Output":" 2410411\t       498.8 ns/op\t       0 B/op\t       0 allocs/op\n"}`,
		`{"Action":"output","Test":"BenchmarkProcSleep","Output":"--- note without ns, op\n"}`,
		`{"Action":"pass","Package":"bps/internal/sim"}`,
	}, "\n") + "\n"
	got, err := parseNsPerOp(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
	if got["BenchmarkEngineEventDispatch"] != 31.07 {
		t.Errorf("dispatch = %v, want 31.07", got["BenchmarkEngineEventDispatch"])
	}
	if got["BenchmarkProcSleep"] != 498.8 {
		t.Errorf("sleep = %v, want 498.8", got["BenchmarkProcSleep"])
	}
}

func TestParseNsPerOpRejectsGarbage(t *testing.T) {
	if _, err := parseNsPerOp(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := parseNsPerOp(strings.NewReader(`{"Action":"output","Test":"B","Output":"x y ns/op\n"}` + "\n")); err == nil {
		t.Fatal("unparseable ns/op accepted")
	}
}

func TestParseNsPerOpEmpty(t *testing.T) {
	got, err := parseNsPerOp(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty input: %v, %v", got, err)
	}
}
