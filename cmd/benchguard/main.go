// Command benchguard is the CI bench-regression smoke: it re-runs the
// engine benchmarks, compares each ns/op against the committed
// test2json baseline (BENCH_sim.json), and fails when a guarded
// benchmark regresses beyond the threshold.
//
// Usage:
//
//	benchguard [-baseline BENCH_sim.json] [-fresh file.json] [-threshold 0.20] [-bench BenchmarkEngineEventDispatch]
//
// Without -fresh it runs the benchmarks itself (go test -json on
// ./internal/sim/..., ./internal/qos, ./internal/stats,
// ./internal/roofline, and ./cmd/bpsd) and writes their
// output to BENCH_new.json — never to the baseline file, so the
// committed numbers stay the reference. -bench may be repeated; the
// default guards the event-dispatch hot paths, the QoS admission
// middleware, the bpsd job-submit handler, and the statistics and
// roofline hot paths (bootstrap resampling, ceiling evaluation), since
// macro benchmarks are too noisy for a shared runner. (The
// shard-scaling macro benchmark is env-gated and absent from a fresh
// run — its numbers live in the baseline for the record, not under the
// guard.)
//
// -tolerances names a JSON override file so an individual benchmark can
// carry a documented per-benchmark allowance instead of loosening the
// global -threshold:
//
//	{"comment": "why", "tolerances": {"BenchmarkName": 0.35}}
//
// The default file (BENCH_tolerances.json) may be absent; a -tolerances
// path given explicitly must exist.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

type event struct {
	Action string `json:"Action"`
	Test   string `json:"Test"`
	Output string `json:"Output"`
}

// parseNsPerOp extracts "<name> → ns/op" from a test2json stream. A
// benchmark's result line arrives as an output event carrying the
// iteration count and "<float> ns/op" columns.
func parseNsPerOp(r io.Reader) (map[string]float64, error) {
	got := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("bad test2json line %q: %w", line, err)
		}
		if ev.Action != "output" || ev.Test == "" || !strings.Contains(ev.Output, "ns/op") {
			continue
		}
		fields := strings.Fields(ev.Output)
		for i, f := range fields {
			if f == "ns/op" && i > 0 {
				v, err := strconv.ParseFloat(fields[i-1], 64)
				if err != nil {
					return nil, fmt.Errorf("%s: bad ns/op %q", ev.Test, fields[i-1])
				}
				got[ev.Test] = v
			}
		}
	}
	return got, sc.Err()
}

func parseFile(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseNsPerOp(f)
}

// runFresh executes the benchmarks and tees the test2json stream to
// out so a failing run leaves its evidence behind.
func runFresh(out string) (map[string]float64, error) {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", ".", "-benchmem", "-json", "./internal/sim/...", "./internal/qos", "./internal/stats", "./internal/roofline", "./cmd/bpsd")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	f, err := os.Create(out)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	got, perr := parseNsPerOp(io.TeeReader(stdout, f))
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("benchmark run failed: %w", err)
	}
	return got, perr
}

type benchList []string

func (b *benchList) String() string     { return strings.Join(*b, ",") }
func (b *benchList) Set(v string) error { *b = append(*b, v); return nil }

// toleranceFile is the -tolerances schema: per-benchmark regression
// allowances that override the global threshold, plus a free-form
// comment documenting why each allowance exists.
type toleranceFile struct {
	Comment    string             `json:"comment"`
	Tolerances map[string]float64 `json:"tolerances"`
}

// loadTolerances reads the override file. A missing file is fine when
// the path is the default (the repo may simply have no overrides);
// explicitly requested files must exist. Non-positive overrides are
// rejected — a zero tolerance would fail on measurement noise.
func loadTolerances(path string, explicit bool) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) && !explicit {
			return nil, nil
		}
		return nil, err
	}
	var tf toleranceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	for name, tol := range tf.Tolerances {
		if tol <= 0 {
			return nil, fmt.Errorf("%s: tolerance for %s is %g, must be positive", path, name, tol)
		}
	}
	return tf.Tolerances, nil
}

// check compares fresh against base for every guarded benchmark and
// reports to w; it returns true when any guard failed. tolerances
// override threshold per benchmark.
func check(w io.Writer, base, fresh map[string]float64, guarded []string, threshold float64, tolerances map[string]float64) bool {
	failed := false
	for _, name := range guarded {
		b, ok := base[name]
		if !ok || b <= 0 {
			fmt.Fprintf(os.Stderr, "benchguard: %s missing from baseline\n", name)
			failed = true
			continue
		}
		f, ok := fresh[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchguard: %s missing from fresh run\n", name)
			failed = true
			continue
		}
		tol, note := threshold, ""
		if override, ok := tolerances[name]; ok {
			tol, note = override, fmt.Sprintf(" (tolerance %+.0f%%)", 100*override)
		}
		delta := (f - b) / b
		status := "ok"
		if delta > tol {
			status = "REGRESSION"
			failed = true
		}
		fmt.Fprintf(w, "%-32s baseline %10.2f ns/op   fresh %10.2f ns/op   %+6.1f%%   %s%s\n",
			name, b, f, 100*delta, status, note)
	}
	return failed
}

func main() {
	baseline := flag.String("baseline", "BENCH_sim.json", "committed test2json baseline")
	freshPath := flag.String("fresh", "", "pre-recorded fresh run to compare (default: run benchmarks now)")
	freshOut := flag.String("fresh-out", "BENCH_new.json", "where a live run records its test2json output")
	threshold := flag.Float64("threshold", 0.20, "max tolerated ns/op regression (fraction)")
	tolPath := flag.String("tolerances", "BENCH_tolerances.json", "per-benchmark tolerance override file (JSON)")
	var guarded benchList
	flag.Var(&guarded, "bench", "benchmark to guard (repeatable; default BenchmarkEngineEventDispatch)")
	flag.Parse()
	if len(guarded) == 0 {
		guarded = benchList{
			"BenchmarkEngineEventDispatch", "BenchmarkEngineCalendarDepth100k",
			"BenchmarkQoSServeDisabled", "BenchmarkQoSServeEnabled", "BenchmarkQoSAdmitThrottled",
			"BenchmarkJobsSubmit",
			"BenchmarkBootstrapDist", "BenchmarkRooflineCeiling",
		}
	}
	tolExplicit := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "tolerances" {
			tolExplicit = true
		}
	})

	tolerances, err := loadTolerances(*tolPath, tolExplicit)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: tolerances: %v\n", err)
		os.Exit(2)
	}
	base, err := parseFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: baseline: %v\n", err)
		os.Exit(2)
	}
	var fresh map[string]float64
	if *freshPath != "" {
		fresh, err = parseFile(*freshPath)
	} else {
		fresh, err = runFresh(*freshOut)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: fresh run: %v\n", err)
		os.Exit(2)
	}

	if check(os.Stdout, base, fresh, guarded, *threshold, tolerances) {
		fmt.Fprintf(os.Stderr, "benchguard: FAIL (threshold %+.0f%%)\n", 100**threshold)
		os.Exit(1)
	}
	fmt.Printf("benchguard: ok (threshold %+.0f%%)\n", 100**threshold)
}
