package bps

import (
	"io"

	"bps/internal/experiments"
	"bps/internal/report"
	"bps/internal/roofline"
	"bps/internal/stats"
	"bps/internal/testbed"
)

// ExperimentParams controls the paper-reproduction suite's scale, seed,
// and parallelism. The zero value means 1/64 of the paper's data volume,
// seed 42, and sweeps fanned out across GOMAXPROCS workers; Parallel: 1
// forces sequential execution. Every Parallel value produces
// bit-identical figures: each run's engine seed is DeriveSeed(Seed,
// sweep ID, point label), independent of scheduling.
type ExperimentParams = experiments.Params

// DeriveSeed returns the engine seed the suite uses for one sweep point:
// a pure function of (base seed, sweep ID, point label), so sweep
// reordering and parallel execution can never change a run's result.
func DeriveSeed(base int64, sweepID, label string) int64 {
	return experiments.DeriveSeed(base, sweepID, label)
}

// Figure is the reproduction of one paper figure: per-run measurements
// plus, for CC figures, the normalized correlation coefficients.
type Figure = experiments.Figure

// Suite reproduces the paper's evaluation with memoized sweeps.
type Suite = experiments.Suite

// FigureIDs lists every reproducible figure ("fig4" … "fig12") in paper
// order.
var FigureIDs = experiments.FigureIDs

// NewSuite returns a reproduction suite with the given parameters.
func NewSuite(p ExperimentParams) *Suite { return experiments.NewSuite(p) }

// Robustness summarizes a figure's CC values across several seeds.
type Robustness = experiments.Robustness

// RunRobustness reruns a CC figure under nseeds independent seeds and
// reports per-metric CC ranges and sign stability — the check that a
// conclusion does not hinge on one lucky seed.
func RunRobustness(p ExperimentParams, figureID string, nseeds int) (Robustness, error) {
	return experiments.RunRobustness(p, figureID, nseeds)
}

// Pearson computes the correlation coefficient between two series (paper
// equation 2); NaN when undefined.
func Pearson(x, y []float64) float64 { return stats.Pearson(x, y) }

// Spearman computes the rank correlation coefficient — the monotone
// relationship the paper's direction argument relies on, robust to the
// hyperbolic metric/time relation that depresses Pearson on wide sweeps.
func Spearman(x, y []float64) float64 { return stats.Spearman(x, y) }

// LatencyDist summarizes per-access response times (quantiles,
// histogram) — the distribution whose mean is ARPT.
type LatencyDist = stats.LatencyDist

// NewLatencyDist builds a response-time distribution from records.
func NewLatencyDist(records []Record) LatencyDist { return stats.NewLatencyDist(records) }

// NormalizedCC applies the paper's presentation convention: +|CC| when
// the measured sign matches the metric's expected direction (Table 1),
// −|CC| otherwise.
func NormalizedCC(cc float64, kind MetricKind) float64 {
	return stats.NormalizedCC(cc, kind.ExpectedDirection())
}

// CCDist summarizes a statistic's distribution across seeds: moments,
// quartiles, and a seed-deterministic bootstrap confidence interval.
type CCDist = stats.Dist

// SuitePhase is one phase of the IO500-style composite: its base-seed
// sweep points with roofline ceilings, per-metric normalized-CC
// distributions across seeds (Pearson and Spearman), and the headroom
// distribution across every (seed, point) run.
type SuitePhase = experiments.SuitePhase

// SuiteReport is the result of the IO500-style composite suite.
type SuiteReport = experiments.SuiteReport

// RunSuite runs the IO500-style composite — easy/hard sequential,
// random, and metadata-heavy phases — under nseeds independent seeds
// and summarizes CC and roofline headroom as distributions with
// bootstrap confidence intervals. Results are bit-identical for every
// Parallel value.
func RunSuite(p ExperimentParams, nseeds int) (SuiteReport, error) {
	return experiments.RunSuite(p, nseeds)
}

// RooflineCeiling returns the analytic BPS ceiling of a storage
// configuration for the given record size and process count — the
// roofline a measured run's BPS is held against (see
// internal/roofline). Concurrency values below 1 are treated as 1.
func RooflineCeiling(s Storage, recordBytes int64, concurrency int) float64 {
	if concurrency < 1 {
		concurrency = 1
	}
	var m roofline.Model
	if s.Servers <= 0 {
		m = roofline.Local(s.Media)
	} else {
		m = roofline.FromCluster(testbed.ClusterSpec{
			Servers: s.Servers,
			Media:   s.Media,
			Clients: concurrency,
		})
	}
	return m.CeilingBPS(recordBytes, concurrency, 0)
}

// Headroom returns measured/ceiling, or 0 when the ceiling is
// degenerate (zero, negative, NaN, or infinite).
func Headroom(measuredBPS, ceilingBPS float64) float64 {
	return roofline.Headroom(measuredBPS, ceilingBPS)
}

// WriteSuite renders the suite report: per-phase run tables with
// ceilings and headroom, CC distributions with bootstrap CIs, and the
// composite score.
func WriteSuite(w io.Writer, rep SuiteReport) { report.WriteSuite(w, rep) }

// WriteSuiteJSON emits the suite report as indented JSON (the
// bpsbench -roofline-out artifact).
func WriteSuiteJSON(w io.Writer, rep SuiteReport) error { return report.WriteSuiteJSON(w, rep) }

// WriteFigure renders one reproduced figure as a plain-text table.
func WriteFigure(w io.Writer, f Figure) { report.WriteFigure(w, f) }

// WriteTable1 renders the paper's Table 1 (expected CC directions).
func WriteTable1(w io.Writer) { report.WriteTable1(w) }

// WriteTable2 renders the paper's Table 2 (experiment sets).
func WriteTable2(w io.Writer) { report.WriteTable2(w) }

// WriteSummary renders the cross-experiment mean normalized CC per
// metric (paper §IV.C.5).
func WriteSummary(w io.Writer, figs []Figure) { report.WriteSummary(w, figs) }
