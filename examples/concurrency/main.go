// Concurrency: the paper's "pure" concurrency experiment (Figs. 9–10) in
// miniature. A fixed total volume is read by 1–8 processes, each with its
// own file pinned to its own I/O server. Execution time falls almost
// linearly, yet average response time per request *rises* — so ARPT
// points the wrong way while BPS tracks the speedup.
//
// Run with: go run ./examples/concurrency
package main

import (
	"fmt"
	"log"

	"bps"
)

func main() {
	const (
		totalBytes = 128 << 20
		record     = 64 << 10
	)
	fmt.Printf("%-6s %10s %12s %12s %14s\n", "procs", "exec (s)", "ARPT (ms)", "IOPS", "BPS (blk/s)")

	var execs, arpts, bpss []float64
	for _, procs := range []int{1, 2, 4, 8} {
		rep, err := bps.SimulateSequentialRead(bps.RunConfig{
			Storage: bps.Storage{Media: bps.HDD, Servers: 8},
			Seed:    int64(procs),
		}, procs, totalBytes/int64(procs), record)
		if err != nil {
			log.Fatal(err)
		}
		m := rep.Metrics
		fmt.Printf("%-6d %10.3f %12.4f %12.1f %14.0f\n",
			procs, m.ExecTime.Seconds(), m.ARPT()*1e3, m.IOPS(), m.BPS())
		execs = append(execs, m.ExecTime.Seconds())
		arpts = append(arpts, m.ARPT())
		bpss = append(bpss, m.BPS())
	}

	fmt.Printf("\nnormalized CC vs execution time: ARPT=%+.2f BPS=%+.2f\n",
		bps.NormalizedCC(bps.Pearson(arpts, execs), bps.ARPT),
		bps.NormalizedCC(bps.Pearson(bpss, execs), bps.BPS))
	fmt.Println("→ ARPT rises as the application gets faster (wrong direction);")
	fmt.Println("  BPS counts the concurrent blocks once in T and tracks the speedup.")
}
