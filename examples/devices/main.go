// Devices: the same sequential workload on five simulated storage stacks
// — direct-attached HDD and SSD, and a PVFS-like parallel file system on
// 1, 4, and 8 HDD servers — the sweep behind the paper's Fig. 4.
//
// Every metric (including BPS) ranks traditional device upgrades
// correctly; the interesting divergences need size, concurrency, or
// data-movement variation (see the other examples).
//
// Run with: go run ./examples/devices
package main

import (
	"fmt"
	"log"

	"bps"
)

func main() {
	const (
		fileSize = 256 << 20
		record   = 4 << 20
	)
	stacks := []struct {
		label   string
		storage bps.Storage
	}{
		{"local HDD", bps.Storage{Media: bps.HDD}},
		{"local SSD", bps.Storage{Media: bps.SSD}},
		{"PVFS 1 server", bps.Storage{Media: bps.HDD, Servers: 1, SharedFile: true}},
		{"PVFS 4 servers", bps.Storage{Media: bps.HDD, Servers: 4, SharedFile: true}},
		{"PVFS 8 servers", bps.Storage{Media: bps.HDD, Servers: 8, SharedFile: true}},
	}

	fmt.Printf("%-16s %10s %12s %12s %10s %14s\n",
		"storage", "exec (s)", "IOPS", "BW (MB/s)", "ARPT (ms)", "BPS (blk/s)")
	for i, s := range stacks {
		rep, err := bps.SimulateSequentialRead(
			bps.RunConfig{Storage: s.storage, Seed: int64(i + 1)},
			1, fileSize, record)
		if err != nil {
			log.Fatal(err)
		}
		m := rep.Metrics
		fmt.Printf("%-16s %10.3f %12.1f %12.2f %10.3f %14.0f\n",
			s.label, m.ExecTime.Seconds(), m.IOPS(), m.Bandwidth()/1e6, m.ARPT()*1e3, m.BPS())
	}
	fmt.Println("\nFaster stacks show shorter execution time and higher BPS together —")
	fmt.Println("on pure device upgrades, all four metrics agree (paper Fig. 4).")
}
