// Quickstart: the BPS metric toolkit on hand-built traces.
//
// Reproduces the paper's three motivating cases (Fig. 1) showing where
// IOPS, bandwidth, and average response time mislead while BPS tracks
// the application-visible performance, then demonstrates the overlapped
// I/O-time computation on the paper's Fig. 2 example and round-trips a
// trace through the 32-byte binary format.
//
// Run with: go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	"bps"
)

func main() {
	fig1a()
	fig1b()
	fig1c()
	fig2()
	traceFile()
}

// fig1a: two small requests in 2T vs one merged request in T. IOPS ties;
// BPS prefers the faster case.
func fig1a() {
	const T = bps.Second
	small := []bps.Record{
		{PID: 1, Blocks: 100, Start: 0, End: T},
		{PID: 1, Blocks: 100, Start: T, End: 2 * T},
	}
	merged := []bps.Record{
		{PID: 1, Blocks: 200, Start: 0, End: T},
	}
	mSmall := bps.ComputeMetrics(small, 200*bps.BlockSize, 2*T)
	mMerged := bps.ComputeMetrics(merged, 200*bps.BlockSize, T)
	fmt.Println("Fig 1(a) — different I/O sizes:")
	fmt.Printf("  two small requests: IOPS=%.1f BPS=%.0f (exec %.0fs)\n",
		mSmall.IOPS(), mSmall.BPS(), mSmall.ExecTime.Seconds())
	fmt.Printf("  one merged request: IOPS=%.1f BPS=%.0f (exec %.0fs)\n",
		mMerged.IOPS(), mMerged.BPS(), mMerged.ExecTime.Seconds())
	fmt.Println("  → IOPS ties the two cases; BPS prefers the faster one.")
	fmt.Println()
}

// fig1b: identical application-visible time, but the right case moves
// twice the data through the I/O stack. BW rises; BPS does not.
func fig1b() {
	const T = bps.Second
	records := []bps.Record{
		{PID: 1, Blocks: 100, Start: 0, End: T},
		{PID: 1, Blocks: 100, Start: T, End: 2 * T},
	}
	plain := bps.ComputeMetrics(records, 200*bps.BlockSize, 2*T)
	extra := bps.ComputeMetrics(records, 400*bps.BlockSize, 2*T)
	fmt.Println("Fig 1(b) — different actual data movement:")
	fmt.Printf("  required only: BW=%.2f MB/s BPS=%.0f\n", plain.Bandwidth()/1e6, plain.BPS())
	fmt.Printf("  2x moved data: BW=%.2f MB/s BPS=%.0f\n", extra.Bandwidth()/1e6, extra.BPS())
	fmt.Println("  → BW rewards useless extra movement; BPS is unchanged.")
	fmt.Println()
}

// fig1c: sequential vs concurrent requests with equal per-request times.
// ARPT ties; BPS rewards the concurrency.
func fig1c() {
	const T = bps.Second
	seq := []bps.Record{
		{PID: 1, Blocks: 100, Start: 0, End: T},
		{PID: 1, Blocks: 100, Start: T, End: 2 * T},
	}
	conc := []bps.Record{
		{PID: 1, Blocks: 100, Start: 0, End: T},
		{PID: 2, Blocks: 100, Start: 0, End: T},
	}
	mSeq := bps.ComputeMetrics(seq, 200*bps.BlockSize, 2*T)
	mConc := bps.ComputeMetrics(conc, 200*bps.BlockSize, T)
	fmt.Println("Fig 1(c) — different I/O concurrency:")
	fmt.Printf("  sequential: ARPT=%.2fs BPS=%.0f\n", mSeq.ARPT(), mSeq.BPS())
	fmt.Printf("  concurrent: ARPT=%.2fs BPS=%.0f\n", mConc.ARPT(), mConc.BPS())
	fmt.Println("  → ARPT ties the two cases; BPS sees the overlap.")
	fmt.Println()
}

// fig2: the overlapped-time computation on the paper's four-request
// example — three partially overlapping requests, an idle gap, then one
// more.
func fig2() {
	records := []bps.Record{
		{PID: 1, Blocks: 64, Start: 1 * bps.Second, End: 4 * bps.Second},  // R1
		{PID: 2, Blocks: 64, Start: 2 * bps.Second, End: 5 * bps.Second},  // R2
		{PID: 3, Blocks: 64, Start: 3 * bps.Second, End: 6 * bps.Second},  // R3
		{PID: 4, Blocks: 64, Start: 8 * bps.Second, End: 10 * bps.Second}, // R4 after idle
	}
	fmt.Println("Fig 2 — overlapped I/O time:")
	fmt.Printf("  sum of durations: %v\n", bps.SumTime(records))
	fmt.Printf("  overlapped union: %v (idle [6s,8s) excluded, overlap counted once)\n",
		bps.OverlapTime(records))
	fmt.Println()
}

// traceFile: round-trip through the paper's 32-byte binary record format.
func traceFile() {
	records := []bps.Record{
		{PID: 7, Blocks: 128, Start: 0, End: 2 * bps.Millisecond},
		{PID: 7, Blocks: 128, Start: 2 * bps.Millisecond, End: 5 * bps.Millisecond},
	}
	var buf bytes.Buffer
	if err := bps.WriteTrace(&buf, records); err != nil {
		log.Fatal(err)
	}
	back, err := bps.ReadTrace(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace file: %d records × %d bytes each; round-tripped %d records\n",
		len(records), bps.RecordSize, len(back))
}
