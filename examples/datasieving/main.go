// Data sieving: the paper's additional-data-movement experiment
// (Fig. 12) in miniature. An HPIO-style noncontiguous read sweeps the
// hole spacing between 256-byte regions with ROMIO-style data sieving
// enabled: the I/O stack moves the covering extent (holes included), so
// file-system bandwidth *rises* with spacing while the application only
// gets slower. BPS, which counts required blocks, points the right way.
//
// Run with: go run ./examples/datasieving
package main

import (
	"fmt"
	"log"

	"bps"
)

func main() {
	const (
		regions    = 16384
		regionSize = 256
	)
	fmt.Printf("%-10s %10s %12s %12s %14s %12s\n",
		"spacing", "exec (s)", "moved (MB)", "BW (MB/s)", "BPS (blk/s)", "required(MB)")

	var execs, bws, bpss []float64
	for _, spacing := range []int64{8, 256, 1024, 4096} {
		rep, err := bps.SimulateNoncontiguousRead(bps.RunConfig{
			Storage: bps.Storage{Media: bps.HDD, Servers: 4},
			Seed:    spacing,
		}, 1, regions, regionSize, spacing, true)
		if err != nil {
			log.Fatal(err)
		}
		m := rep.Metrics
		fmt.Printf("%-10s %10.3f %12.2f %12.2f %14.0f %12.2f\n",
			fmt.Sprintf("%dB", spacing), m.ExecTime.Seconds(),
			float64(m.MovedBytes)/1e6, m.Bandwidth()/1e6, m.BPS(),
			float64(m.Blocks*bps.BlockSize)/1e6)
		execs = append(execs, m.ExecTime.Seconds())
		bws = append(bws, m.Bandwidth())
		bpss = append(bpss, m.BPS())
	}

	fmt.Printf("\nnormalized CC vs execution time: BW=%+.2f BPS=%+.2f\n",
		bps.NormalizedCC(bps.Pearson(bws, execs), bps.BW),
		bps.NormalizedCC(bps.Pearson(bpss, execs), bps.BPS))
	fmt.Println("→ the application needs the same data at every spacing, but the stack")
	fmt.Println("  moves ever more hole bytes: BW climbs while the run slows down.")
	fmt.Println("  BPS divides required blocks by overlapped time and falls correctly.")
}
