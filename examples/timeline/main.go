// Timeline: windowed BPS over a run's lifetime.
//
// Runs a bursty two-phase application (an I/O-heavy scan followed by a
// compute phase with sparse I/O) on a simulated HDD, then slices the
// trace into 200 ms windows. The single-number BPS summarizes the whole
// run; the timeline shows where the I/O system was actually busy and
// fast — the kind of drill-down the paper's planned toolkit (§V) is for.
//
// Run with: go run ./examples/timeline
package main

import (
	"fmt"
	"log"
	"strings"

	"bps"
)

func main() {
	// Phase 1: dense sequential scan. Phase 2: sparse records with think
	// time between them (modelled here by spacing the records out with
	// synthetic start/end times from a simulated run plus idle gaps).
	rep, err := bps.SimulateSequentialRead(
		bps.RunConfig{Storage: bps.Storage{Media: bps.HDD}, Seed: 1},
		1, 64<<20, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	records := rep.Records

	// Append a sparse phase: one 1 MiB access every 300 ms of think time.
	t := rep.Metrics.ExecTime
	for i := 0; i < 6; i++ {
		t += 300 * bps.Millisecond // compute (idle I/O)
		dur := 12 * bps.Millisecond
		records = append(records, bps.Record{
			PID: 1, Blocks: bps.BlocksOf(1 << 20), Start: t, End: t + dur,
		})
		t += dur
	}

	m := bps.ComputeMetrics(records, 70<<20, t)
	fmt.Printf("whole run: exec=%.3fs  T=%.3fs  BPS=%.0f blocks/s\n\n",
		m.ExecTime.Seconds(), m.IOTime.Seconds(), m.BPS())

	points, err := bps.Timeline(records, 200*bps.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%8s %8s %14s   %s\n", "t (s)", "util", "BPS (blk/s)", "activity")
	var peak float64
	for _, p := range points {
		if p.BPS() > peak {
			peak = p.BPS()
		}
	}
	for _, p := range points {
		bar := ""
		if peak > 0 {
			bar = strings.Repeat("#", int(40*p.BPS()/peak+0.5))
		}
		fmt.Printf("%8.1f %7.0f%% %14.0f   %s\n",
			p.Start.Seconds(), 100*p.Utilization(), p.BPS(), bar)
	}
	fmt.Println("\nThe scan phase saturates the device; the compute phase shows idle")
	fmt.Println("windows (util 0%) that the overlapped-time rule keeps out of T.")
}
