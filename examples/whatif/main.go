// What-if: record a trace on one storage stack, replay it on others.
//
// A mixed two-process workload is measured on a local HDD, then the
// recorded trace — sizes, ordering, concurrency structure, think gaps —
// is replayed on an SSD and on a 4-server parallel file system. The
// replay answers the procurement question ("what would this workload do
// on that hardware?") without touching the application, and BPS gives
// the comparison a single application-centric number.
//
// Run with: go run ./examples/whatif
package main

import (
	"fmt"
	"log"

	"bps"
)

func main() {
	// Record: two processes, 64 KiB records, on a local HDD.
	orig, err := bps.SimulateSequentialRead(
		bps.RunConfig{Storage: bps.Storage{Media: bps.HDD}, Seed: 1},
		2, 32<<20, 64<<10)
	if err != nil {
		log.Fatal(err)
	}

	stacks := []struct {
		label   string
		storage bps.Storage
	}{
		{"ssd", bps.Storage{Media: bps.SSD}},
		{"pvfs 4xhdd", bps.Storage{Media: bps.HDD, Servers: 4, SharedFile: true}},
	}

	fmt.Printf("%-12s %10s %10s %14s\n", "stack", "T (s)", "speedup", "BPS (blk/s)")
	fmt.Printf("%-12s %10.3f %10s %14.0f   (recorded)\n",
		"hdd", orig.Metrics.IOTime.Seconds(), "1.0x", orig.Metrics.BPS())
	for _, s := range stacks {
		rep, err := bps.ReplayTrace(bps.RunConfig{Storage: s.storage, Seed: 1}, orig.Records)
		if err != nil {
			log.Fatal(err)
		}
		speedup := orig.Metrics.IOTime.Seconds() / rep.Metrics.IOTime.Seconds()
		fmt.Printf("%-12s %10.3f %9.1fx %14.0f\n",
			s.label, rep.Metrics.IOTime.Seconds(), speedup, rep.Metrics.BPS())
	}
	fmt.Println("\nThe replay preserves what the application asked for (B is identical);")
	fmt.Println("only T changes with the stack, so BPS ratios are the speedups.")
}
