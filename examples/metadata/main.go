// Metadata: where the BPS metric's scope ends.
//
// BPS divides application-required blocks by the overlapped *data-access*
// time, so work the I/O system does that moves no application data —
// metadata lookups, opens — is invisible to it. This example reads the
// same 4 MiB twice from a 2-server PVFS: once from a single file, once
// scattered over 1024 tiny files, each requiring a metadata-server RPC.
// The small-file run is several times slower end to end, yet its BPS is
// almost unchanged, because the lost time lives outside the recorded
// data accesses. The paper scopes BPS to block traffic (§III.A); this is
// what that scoping costs.
//
// Like examples/collectiveio, this example composes the internal
// simulation packages directly.
//
// Run with: go run ./examples/metadata
package main

import (
	"fmt"
	"log"

	"bps/internal/core"
	"bps/internal/device"
	"bps/internal/fsim"
	"bps/internal/netsim"
	"bps/internal/pfs"
	"bps/internal/sim"
	"bps/internal/trace"
)

const (
	totalBytes = 4 << 20
	smallFile  = 4 << 10
	nSmall     = totalBytes / smallFile
)

func main() {
	one := run("one-file", 1)
	many := run("small-files", nSmall)

	fmt.Printf("%-12s %10s %10s %12s %14s %10s\n",
		"layout", "exec (s)", "T (s)", "mds ops", "BPS (blk/s)", "slowdown")
	fmt.Printf("%-12s %10.3f %10.3f %12d %14.0f %10s\n",
		"one-file", one.m.ExecTime.Seconds(), one.m.IOTime.Seconds(), one.mdsOps, one.m.BPS(), "1.0x")
	fmt.Printf("%-12s %10.3f %10.3f %12d %14.0f %9.1fx\n",
		"small-files", many.m.ExecTime.Seconds(), many.m.IOTime.Seconds(), many.mdsOps, many.m.BPS(),
		many.m.ExecTime.Seconds()/one.m.ExecTime.Seconds())

	fmt.Println("\nThe small-file run reads the same data but spends much of its time in")
	fmt.Println("metadata RPCs, which never enter the trace: BPS falls far less than the")
	fmt.Println("application actually slows down. BPS is an overall *data-path* metric —")
	fmt.Println("metadata-bound workloads need a companion metric. The paper scopes BPS")
	fmt.Println("to block traffic (§III.A); this example is that scope's boundary.")
}

type outcome struct {
	m      core.Metrics
	mdsOps uint64
}

func run(name string, files int) outcome {
	e := sim.NewEngine(1)
	fabric := netsim.NewFabric(e, netsim.DefaultGigabit())
	devs := []device.Device{
		device.NewSSD(e, device.DefaultSSD()),
		device.NewSSD(e, device.DefaultSSD()),
	}
	cluster := pfs.NewCluster(e, fabric, pfs.Config{
		ServerFS: fsim.Config{CacheBytes: 1 << 30, ReadAhead: 1 << 20},
	}, devs)
	perFile := int64(totalBytes / files)
	for i := 0; i < files; i++ {
		if _, err := cluster.Create(fmt.Sprintf("%s.%d", name, i), perFile, cluster.DefaultLayout()); err != nil {
			log.Fatal(err)
		}
	}
	client := cluster.NewClient("cn0")
	col := trace.NewCollector(0)
	e.Spawn("app", func(p *sim.Proc) {
		for i := 0; i < files; i++ {
			f, err := client.Open(p, fmt.Sprintf("%s.%d", name, i))
			if err != nil {
				log.Fatal(err)
			}
			for off := int64(0); off < perFile; off += smallFile {
				t0 := p.Now()
				if err := client.Read(p, f, off, smallFile); err != nil {
					log.Fatal(err)
				}
				col.Record(trace.BlocksOf(smallFile), t0, p.Now())
			}
		}
	})
	if err := e.Run(); err != nil {
		log.Fatal(err)
	}
	m := core.Compute(trace.Gather(col), cluster.Moved(), e.Now())
	return outcome{m: m, mdsOps: cluster.MetadataOps()}
}
