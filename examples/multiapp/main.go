// Multiapp: two applications sharing one I/O system, both recorded.
//
// The paper's measurement methodology (§III.B step 1) records *every*
// application the I/O system services. Here a bandwidth-hungry scan
// shares a 4-server PVFS with a think-heavy analytics job; the combined
// trace gives the system-wide B, T, and BPS, while per-application
// reports show what each one experienced.
//
// Run with: go run ./examples/multiapp
package main

import (
	"fmt"
	"log"

	"bps"
)

func main() {
	combined, perApp, err := bps.SimulateConcurrentApps(
		bps.RunConfig{
			Storage: bps.Storage{Media: bps.HDD, Servers: 4},
			Seed:    1,
		},
		bps.AppSpec{
			Name:            "scan",
			Processes:       2,
			BytesPerProcess: 64 << 20,
			RecordSize:      1 << 20,
		},
		bps.AppSpec{
			Name:            "analytics",
			Processes:       2,
			BytesPerProcess: 8 << 20,
			RecordSize:      64 << 10,
			ComputePerOp:    5 * bps.Millisecond, // think time between records
		},
	)
	if err != nil {
		log.Fatal(err)
	}

	names := []string{"scan", "analytics"}
	fmt.Printf("%-12s %8s %10s %10s %12s %14s\n",
		"application", "procs", "ops", "exec (s)", "ARPT (ms)", "BPS (blk/s)")
	for i, rep := range perApp {
		m := rep.Metrics
		fmt.Printf("%-12s %8d %10d %10.3f %12.3f %14.0f\n",
			names[i], len(uniquePIDs(rep.Records)), m.Ops,
			m.ExecTime.Seconds(), m.ARPT()*1e3, m.BPS())
	}

	m := combined.Metrics
	fmt.Printf("\ncombined I/O system view (all %d accesses from both apps):\n", m.Ops)
	fmt.Printf("  B = %d blocks, T = %.3fs (overlap across apps counted once)\n",
		m.Blocks, m.IOTime.Seconds())
	fmt.Printf("  system BPS = %.0f blocks/s\n", m.BPS())
	fmt.Println("\nNeither application's own trace explains the system: the paper's")
	fmt.Println("global gather is what makes BPS an overall I/O-system metric.")
}

func uniquePIDs(records []bps.Record) map[int64]bool {
	set := make(map[int64]bool)
	for _, r := range records {
		set[r.PID] = true
	}
	return set
}
