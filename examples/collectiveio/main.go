// Collective I/O: two-phase collective reads vs. independent data
// sieving on an interleaved access pattern.
//
// Four processes each need every 4th 16 KiB block of a shared file. With
// independent data sieving each process reads nearly the whole covering
// extent, so the file system moves ~4× the file; with two-phase
// collective I/O aggregators read the extent once and the exchange phase
// scatters it. File-system bandwidth (BW) barely distinguishes the two —
// it happily counts the redundant traffic — while BPS reflects the
// application-visible speedup.
//
// This example uses the internal simulation packages directly; it is the
// one example that goes below the public facade, showing how the
// substrate composes.
//
// Run with: go run ./examples/collectiveio
package main

import (
	"fmt"
	"log"

	"bps"
	"bps/internal/core"
	"bps/internal/device"
	"bps/internal/fsim"
	"bps/internal/middleware"
	"bps/internal/sim"
	"bps/internal/trace"
)

const (
	nprocs       = 4
	totalRegions = 2048
	regionSize   = 16 << 10
	fileSize     = totalRegions * regionSize
)

func main() {
	collective := run("collective", true)
	sieving := run("sieving", false)

	fmt.Printf("%-12s %10s %12s %12s %14s\n", "method", "exec (s)", "moved (MB)", "BW (MB/s)", "BPS (blk/s)")
	for _, row := range []struct {
		label string
		m     core.Metrics
	}{{"sieving", sieving}, {"collective", collective}} {
		m := row.m
		fmt.Printf("%-12s %10.3f %12.1f %12.2f %14.0f\n",
			row.label, m.ExecTime.Seconds(), float64(m.MovedBytes)/1e6, m.Bandwidth()/1e6, m.BPS())
	}
	fmt.Printf("\ncollective speedup: %.1fx with %.1fx less data moved\n",
		sieving.ExecTime.Seconds()/collective.ExecTime.Seconds(),
		float64(sieving.MovedBytes)/float64(collective.MovedBytes))
	fmt.Println("BW cannot tell redundant traffic from useful traffic; BPS can.")
}

// run executes the interleaved pattern with one of the two methods and
// returns the gathered metrics.
func run(name string, useCollective bool) core.Metrics {
	e := sim.NewEngine(1)
	dev := device.NewHDD(e, device.DefaultHDD())
	fs := fsim.New(e, dev, fsim.Config{Name: name})
	f, err := fs.Create("shared", fileSize)
	if err != nil {
		log.Fatal(err)
	}
	target := middleware.NewTarget(f.Layer(), f.Name(), f.Size())

	collectors := make([]*trace.Collector, nprocs)
	var coll *middleware.Collective
	if useCollective {
		coll = middleware.NewCollective(e, target, nprocs, middleware.CollectiveConfig{})
	}
	for pid := 0; pid < nprocs; pid++ {
		pid := pid
		collectors[pid] = trace.NewCollector(int64(pid))
		e.Spawn("rank", func(p *sim.Proc) {
			var regions []middleware.Region
			for i := pid; i < totalRegions; i += nprocs {
				regions = append(regions, middleware.Region{Off: int64(i) * regionSize, Size: regionSize})
			}
			if useCollective {
				if err := coll.ReadAll(p, collectors[pid], regions); err != nil {
					log.Fatal(err)
				}
				return
			}
			m := middleware.NewMPIIO(target, collectors[pid], middleware.MPIIOConfig{DataSieving: true})
			if err := m.ReadRegions(p, regions); err != nil {
				log.Fatal(err)
			}
		})
	}
	if err := e.Run(); err != nil {
		log.Fatal(err)
	}
	_ = bps.BlockSize // examples pair internal composition with the public metric unit
	return core.Compute(trace.Gather(collectors...), fs.Moved(), e.Now())
}
