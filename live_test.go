package bps

import (
	"reflect"
	"testing"
)

func measureAccs() []Access {
	var accs []Access
	for pid := int64(0); pid < 2; pid++ {
		for i := int64(0); i < 8; i++ {
			accs = append(accs, Access{
				PID: pid, Slot: int(pid), Off: i * 65536, Size: 65536,
			})
		}
	}
	return accs
}

// TestMeasureAccessesMem is the public-API smoke: measure an access
// stream on the in-memory backend and get a shape-identical RunReport.
func TestMeasureAccessesMem(t *testing.T) {
	rep, err := MeasureAccesses(LiveConfig{Seed: 7}, measureAccs())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics.Ops != 16 || rep.Errors != 0 {
		t.Fatalf("ops %d errors %d", rep.Metrics.Ops, rep.Errors)
	}
	if rep.Metrics.BPS() <= 0 {
		t.Fatalf("BPS = %v", rep.Metrics.BPS())
	}
	if len(rep.Records) != 16 {
		t.Fatalf("%d records", len(rep.Records))
	}
	if rep.Attribution == nil || len(rep.Attribution.Windows) == 0 {
		t.Fatalf("no windowed series: %+v", rep.Attribution)
	}
	if rep.Obs != nil {
		t.Fatalf("live runs must not claim an engine observer")
	}

	// Default virtual mode is deterministic through the public surface.
	rep2, err := MeasureAccesses(LiveConfig{Seed: 7}, measureAccs())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Metrics, rep2.Metrics) {
		t.Fatalf("virtual MeasureAccesses not deterministic")
	}
}

// TestMeasureAccessesOS measures a real temp directory.
func TestMeasureAccessesOS(t *testing.T) {
	rep, err := MeasureAccesses(LiveConfig{Dir: t.TempDir(), Wall: true, Seed: 7}, measureAccs())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics.Ops != 16 || rep.Errors != 0 {
		t.Fatalf("ops %d errors %d", rep.Metrics.Ops, rep.Errors)
	}
	if rep.Metrics.MovedBytes != 16*65536 {
		t.Fatalf("moved %d bytes, want %d", rep.Metrics.MovedBytes, 16*65536)
	}
}

func TestMeasureAccessesEmpty(t *testing.T) {
	if _, err := MeasureAccesses(LiveConfig{}, nil); err == nil {
		t.Fatalf("empty stream accepted")
	}
}
