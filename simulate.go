package bps

import (
	"fmt"
	"runtime"
	"sort"

	"bps/internal/core"
	"bps/internal/device"
	"bps/internal/experiments"
	"bps/internal/faults"
	"bps/internal/fsim"
	"bps/internal/ioreq"
	"bps/internal/pfs"
	"bps/internal/sim"
	"bps/internal/testbed"
	"bps/internal/workload"
)

// SimulateEach runs fn(i) for every i in [0, n) across at most parallel
// worker goroutines (0 means GOMAXPROCS) and returns the lowest-index
// error once all runs have finished. It is the batch entry point for
// independent simulations — what-if comparisons across storage stacks,
// seed sweeps, replay fan-outs. Each invocation must be self-contained:
// build its own RunConfig and call one Simulate*/Replay function, which
// runs on its own engine; results must depend only on i, never on
// execution order, so a parallel batch is bit-identical to a sequential
// one.
func SimulateEach(parallel, n int, fn func(i int) error) error {
	return experiments.ForEach(parallel, n, fn)
}

// Media selects the storage medium for a simulated run.
type Media = testbed.Media

// Storage media matching the paper's testbed devices.
const (
	HDD = testbed.HDD
	SSD = testbed.SSD
)

// Storage describes the storage stack for a simulated run.
type Storage struct {
	// Media is the device model (HDD or SSD).
	Media Media

	// Servers selects the stack: 0 means a direct-attached local file
	// system; n ≥ 1 means a PVFS-like parallel file system with n I/O
	// servers on a Gigabit fabric.
	Servers int

	// SharedFile, for cluster stacks, stripes one shared file across all
	// servers and gives each process its own segment (IOR style). When
	// false, each process gets its own file pinned to one server (the
	// paper's "pure" concurrency setup).
	SharedFile bool

	// FaultEvery, when nonzero on a local stack, fails every Nth device
	// access after it has consumed its full service time — the paper's
	// §III.A non-successful accesses, which still count in B.
	FaultEvery uint64

	// FaultRate, when positive, degrades the whole stack with a
	// seed-deterministic fault plan of that intensity (per-access device
	// fault probability; stragglers, throughput degradation, network
	// drops/delays, and server fail/slow/death scale with it — see
	// internal/faults.Profile). Cluster stacks also enable the client
	// recovery policy: per-RPC timeouts, capped exponential backoff with
	// jitter, and failover to replica servers. Local stacks inject
	// device-layer faults only, surfacing them as application-visible
	// errors that still count in B.
	FaultRate float64

	// ClientCacheBytes, when positive on a cluster stack, layers a
	// shared client-side page cache in front of every client: re-read
	// pages are served at memory speed without touching the fabric or
	// the servers. Zero leaves the request path exactly as before.
	ClientCacheBytes int64

	// ClientCacheReadAhead is the client cache's sequential read-ahead
	// window in bytes (0 = no read-ahead). Only meaningful when
	// ClientCacheBytes is positive.
	ClientCacheReadAhead int64
}

// clientCache translates the public cache knobs into the testbed's
// cache config.
func (s Storage) clientCache() ioreq.CacheConfig {
	return ioreq.CacheConfig{CapacityBytes: s.ClientCacheBytes, ReadAhead: s.ClientCacheReadAhead}
}

// RunConfig carries the common knobs of a simulated run.
type RunConfig struct {
	Storage Storage

	// Seed makes runs reproducible; equal seeds give identical results.
	Seed int64

	// Shards, when positive, runs the simulation on a sharded engine
	// with that many workers: every I/O server (and the metadata server)
	// gets its own event calendar and the calendars execute concurrently
	// under conservative lookahead windows. Results are bit-identical
	// for every positive value — only classic (0) vs. sharded differ,
	// because the sharded request path models RPCs asynchronously.
	// Negative means GOMAXPROCS. Requires a cluster stack (Servers > 0).
	Shards int

	// Observe, when non-nil, attaches the observability subsystem to the
	// run: metrics registry, time-series sampler, and (per the options)
	// Chrome trace-event collection. It never changes the simulated
	// timeline — an observed run measures exactly what an unobserved one
	// does. The collected data is returned in RunReport.Obs.
	Observe *ObserveOptions
}

// RunReport is everything measured from one simulated run.
type RunReport struct {
	// Metrics holds the run's measurements; use its IOPS, Bandwidth,
	// ARPT, and BPS methods for the four metric values.
	Metrics Metrics

	// Records is the gathered application-access trace.
	Records []Record

	// Errors counts failed application accesses (still included in B).
	Errors int

	// Obs is the run's observability data (metrics registry, sampler
	// series, Chrome trace buffer); nil unless RunConfig.Observe was set.
	Obs *Observer

	// Attribution is the critical-path profiler's decomposition of the
	// run's overlapped time T into per-layer blame; nil unless
	// ObserveOptions.Attribution or WindowEvery was set.
	Attribution *Attribution
}

// SimulateSequentialRead runs an IOzone/IOR-style workload: procs
// processes each sequentially read bytesPerProc bytes in recordSize
// records.
func SimulateSequentialRead(cfg RunConfig, procs int, bytesPerProc, recordSize int64) (RunReport, error) {
	w := workload.SeqRead{
		Label:           "seqread",
		Processes:       procs,
		BytesPerProcess: bytesPerProc,
		RecordSize:      recordSize,
	}
	if cfg.Storage.Servers > 0 && cfg.Storage.SharedFile {
		w.UseMPIIO = true
		w.StartOffset = func(pid int) int64 { return int64(pid) * bytesPerProc }
	}
	return simulate(cfg, procs, int64(procs)*bytesPerProc, bytesPerProc, w)
}

// SimulateNoncontiguousRead runs an HPIO-style workload: each process
// reads regionCount regions of regionSize bytes separated by spacing
// bytes of hole through the MPI-IO layer, with or without data sieving.
func SimulateNoncontiguousRead(cfg RunConfig, procs, regionCount int, regionSize, spacing int64, sieving bool) (RunReport, error) {
	w := workload.Noncontig{
		Label:          "noncontig",
		Processes:      procs,
		RegionCount:    regionCount,
		RegionSize:     regionSize,
		RegionSpacing:  spacing,
		RegionsPerCall: 1024,
		Sieving:        sieving,
	}
	perProc := w.Span() + w.RegionSpacing
	cfg.Storage.SharedFile = cfg.Storage.Servers > 0 // region bases are per-process segments
	return simulate(cfg, procs, int64(procs)*perProc, perProc, w)
}

// AppSpec describes one application in a multi-application simulation.
type AppSpec struct {
	Name            string
	Processes       int
	BytesPerProcess int64
	RecordSize      int64

	// ComputePerOp inserts think time after each record, letting apps
	// with different I/O intensity share the system.
	ComputePerOp Time
}

// SimulateConcurrentApps runs several applications concurrently on one
// I/O system and records all of them, the paper's multi-application
// case (§III.B step 1: "If the I/O system services more than one
// application concurrently, we record the I/O access information of all
// the applications"). It returns the combined report — B, T, and the
// metrics over every application's accesses — plus one report per
// application.
//
// Process IDs are globally unique across applications. Each process
// gets its own file; on a cluster each file is striped over all servers.
// MovedBytes in every report is the system-wide total: file-system-level
// movement is not attributable to one application, which is exactly why
// the paper gathers a global collection.
func SimulateConcurrentApps(cfg RunConfig, apps ...AppSpec) (combined RunReport, perApp []RunReport, err error) {
	if len(apps) == 0 {
		return RunReport{}, nil, fmt.Errorf("bps: no applications given")
	}
	e, err := newEngine(cfg)
	if err != nil {
		return RunReport{}, nil, err
	}
	ob := attachObserver(e, cfg)

	// Shared infrastructure.
	var cluster *pfs.Cluster
	var localFS *fsim.FileSystem
	if cfg.Storage.Servers > 0 {
		cluster, _ = testbed.NewCluster(e, testbed.ClusterSpec{
			Servers: cfg.Storage.Servers,
			Media:   cfg.Storage.Media,
			Clients: 0,
			Faults:  faultPlan(cfg),
		})
	} else {
		localFS = fsim.New(e, localDevice(e, cfg), fsim.Config{Name: "local"})
	}
	moved := func() int64 {
		if cluster != nil {
			return cluster.Moved()
		}
		return localFS.Moved()
	}

	var pendings []*workload.Pending
	firstPID := int64(0)
	for ai, app := range apps {
		if app.Processes < 1 || app.BytesPerProcess <= 0 || app.RecordSize <= 0 {
			return RunReport{}, nil, fmt.Errorf("bps: app %q: processes, bytes and record size must be positive", app.Name)
		}
		env, err := appEnv(e, cluster, localFS, ai, app)
		if err != nil {
			return RunReport{}, nil, fmt.Errorf("bps: app %q: %w", app.Name, err)
		}
		w := workload.SeqRead{
			Label:           app.Name,
			Processes:       app.Processes,
			BytesPerProcess: app.BytesPerProcess,
			RecordSize:      app.RecordSize,
			ComputePerOp:    app.ComputePerOp,
			FirstPID:        firstPID,
		}
		firstPID += int64(app.Processes)
		pend, err := w.Start(e, env)
		if err != nil {
			return RunReport{}, nil, fmt.Errorf("bps: app %q: %w", app.Name, err)
		}
		pendings = append(pendings, pend)
	}
	if err := e.Run(); err != nil {
		return RunReport{}, nil, fmt.Errorf("bps: simulation: %w", err)
	}
	e.Shutdown()

	var allRecords []Record
	var errs int
	for _, pend := range pendings {
		res := pend.Result()
		perApp = append(perApp, RunReport{
			Metrics: core.Compute(res.Trace, moved(), res.ExecTime),
			Records: res.Trace.Records(),
			Errors:  res.Errors,
		})
		allRecords = append(allRecords, res.Trace.Records()...)
		errs += res.Errors
	}
	ob = finishObservation(ob, allRecords)
	combined = RunReport{
		Metrics:     ComputeMetrics(allRecords, moved(), e.Now()),
		Records:     allRecords,
		Errors:      errs,
		Obs:         ob,
		Attribution: ob.Attribution(),
	}
	return combined, perApp, nil
}

// appEnv builds application ai's private files and clients on the
// shared infrastructure.
func appEnv(e *sim.Engine, cluster *pfs.Cluster, localFS *fsim.FileSystem, ai int, app AppSpec) (workload.Env, error) {
	if cluster != nil {
		env := &workload.ClusterEnv{Cluster: cluster}
		for i := 0; i < app.Processes; i++ {
			f, err := cluster.Create(fmt.Sprintf("app%d.file%d", ai, i), app.BytesPerProcess, cluster.DefaultLayout())
			if err != nil {
				return nil, err
			}
			env.Files = append(env.Files, f)
			env.Clients = append(env.Clients, cluster.NewClient(fmt.Sprintf("app%d.cn%d", ai, i)))
		}
		return env, nil
	}
	env := &workload.LocalEnv{FS: localFS}
	for i := 0; i < app.Processes; i++ {
		f, err := localFS.Create(fmt.Sprintf("app%d.file%d", ai, i), app.BytesPerProcess)
		if err != nil {
			return nil, err
		}
		env.Files = append(env.Files, f)
	}
	return env, nil
}

// newEngine builds one run's engine in the execution mode RunConfig
// selects: classic single-calendar, or sharded with cfg.Shards workers
// (GOMAXPROCS when negative). Sharding partitions the simulation by
// I/O server, so it needs a cluster stack.
func newEngine(cfg RunConfig) (*sim.Engine, error) {
	e := sim.NewEngine(cfg.Seed)
	shards := cfg.Shards
	if shards < 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > 0 {
		if cfg.Storage.Servers == 0 {
			return nil, fmt.Errorf("bps: Shards needs a cluster stack (Storage.Servers > 0)")
		}
		e.EnableSharding(shards)
	}
	return e, nil
}

// faultPlan derives the run's fault plan from the public FaultRate
// knob. The plan seed is a pure function of the run seed, so two runs
// with equal configs inject identical fault patterns; a zero rate
// yields a disabled plan that changes nothing.
func faultPlan(cfg RunConfig) faults.Config {
	return faults.Profile(experiments.DeriveSeed(cfg.Seed, "bps-fault-plan", "run"), cfg.Storage.FaultRate)
}

// localDevice builds a local-stack device with the configured fault
// wrappers: the deterministic every-Nth injector (FaultEvery) and/or
// the seeded plan's device faults (FaultRate).
func localDevice(e *sim.Engine, cfg RunConfig) device.Device {
	dev := testbed.NewDevice(e, cfg.Storage.Media)
	if cfg.Storage.FaultEvery > 0 {
		dev = faults.NewEveryNth(dev, cfg.Storage.FaultEvery)
	}
	return faults.WrapDevice(e, dev, faultPlan(cfg), "local."+cfg.Storage.Media.String())
}

// simulate builds the configured stack on a fresh engine and runs w.
func simulate(cfg RunConfig, procs int, totalBytes, perProcBytes int64, w workload.Runner) (RunReport, error) {
	if procs < 1 {
		return RunReport{}, fmt.Errorf("bps: procs %d < 1", procs)
	}
	e, err := newEngine(cfg)
	if err != nil {
		return RunReport{}, err
	}
	ob := attachObserver(e, cfg)
	var env workload.Env
	switch {
	case cfg.Storage.Servers == 0:
		if cfg.Storage.FaultEvery > 0 || cfg.Storage.FaultRate > 0 {
			env, err = testbed.NewLocalEnvOn(e, localDevice(e, cfg), procs, perProcBytes)
		} else {
			env, err = testbed.NewLocalEnv(e, cfg.Storage.Media, procs, perProcBytes)
		}
	case cfg.Storage.SharedFile:
		env, err = testbed.NewSharedFileEnv(e, testbed.ClusterSpec{
			Servers:     cfg.Storage.Servers,
			Media:       cfg.Storage.Media,
			Clients:     procs,
			Faults:      faultPlan(cfg),
			ClientCache: cfg.Storage.clientCache(),
		}, totalBytes)
	default:
		env, err = testbed.NewPinnedFilesEnv(e, testbed.ClusterSpec{
			Servers:     cfg.Storage.Servers,
			Media:       cfg.Storage.Media,
			Clients:     procs,
			Faults:      faultPlan(cfg),
			ClientCache: cfg.Storage.clientCache(),
		}, perProcBytes)
	}
	if err != nil {
		return RunReport{}, fmt.Errorf("bps: building storage: %w", err)
	}
	res, err := w.Run(e, env)
	if err != nil {
		return RunReport{}, fmt.Errorf("bps: running workload: %w", err)
	}
	e.Shutdown()
	ob = finishObservation(ob, res.Trace.Records())
	return RunReport{
		Metrics:     core.Compute(res.Trace, res.Moved, res.ExecTime),
		Records:     res.Trace.Records(),
		Errors:      res.Errors,
		Obs:         ob,
		Attribution: ob.Attribution(),
	}, nil
}

// ReplayTrace re-issues a recorded trace (from any source: a prior
// simulation, iogen, or imported blkparse output) against the configured
// storage stack, returning what the same access pattern would have
// measured there. Sizes, per-process ordering, concurrency structure,
// and think gaps are preserved; physical placement is synthesized
// sequentially per process because the paper's 32-byte record carries no
// offsets.
func ReplayTrace(cfg RunConfig, records []Record) (RunReport, error) {
	if len(records) == 0 {
		return RunReport{}, fmt.Errorf("bps: empty trace")
	}
	w := workload.Replay{Label: "replay", Records: records}
	sizes := w.PIDBytes()
	pids := make([]int64, 0, len(sizes))
	for pid := range sizes {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })

	fileSizes := make([]int64, len(pids))
	for slot, pid := range pids {
		fileSizes[slot] = sizes[pid]
	}
	return replayOn(cfg, w, fileSizes)
}

// ReplayAccesses re-issues an offset-aware access stream — typically
// reconstructed from an ingested Darshan-style log (see ReadLog) —
// against the configured storage stack. Unlike ReplayTrace, accesses
// keep their recorded operations, offsets, and file separation: the env
// gets one file per access slot, sized to the largest offset reached.
func ReplayAccesses(cfg RunConfig, accs []workload.Access) (RunReport, error) {
	if len(accs) == 0 {
		return RunReport{}, fmt.Errorf("bps: empty access stream")
	}
	w := workload.ReplayIO{Label: "replay", Accesses: accs}
	return replayOn(cfg, w, w.SlotExtents())
}

// replayOn builds a replay env with one file per fileSizes entry and
// runs w on it.
func replayOn(cfg RunConfig, w workload.Runner, fileSizes []int64) (RunReport, error) {
	e, err := newEngine(cfg)
	if err != nil {
		return RunReport{}, err
	}
	ob := attachObserver(e, cfg)
	spec := testbed.ClusterSpec{
		Servers: cfg.Storage.Servers,
		Media:   cfg.Storage.Media,
		Faults:  faultPlan(cfg),
	}
	var dev device.Device
	if spec.Servers == 0 {
		dev = localDevice(e, cfg)
	}
	env, err := testbed.NewFilesEnv(e, spec, dev, "replay", fileSizes)
	if err != nil {
		return RunReport{}, fmt.Errorf("bps: replay: %w", err)
	}
	res, err := w.Run(e, env)
	if err != nil {
		return RunReport{}, fmt.Errorf("bps: replay: %w", err)
	}
	e.Shutdown()
	ob = finishObservation(ob, res.Trace.Records())
	return RunReport{
		Metrics:     core.Compute(res.Trace, res.Moved, res.ExecTime),
		Records:     res.Trace.Records(),
		Errors:      res.Errors,
		Obs:         ob,
		Attribution: ob.Attribution(),
	}, nil
}
