package bps_test

import (
	"bytes"
	"reflect"
	"testing"

	"bps"
)

// attribCases are the pinned-seed scenarios the attribution invariant
// is checked on: every simulated stack shape, including degraded and
// cached ones.
var attribCases = []struct {
	name string
	cfg  bps.RunConfig
}{
	{"local-hdd", bps.RunConfig{
		Storage: bps.Storage{Media: bps.HDD}, Seed: 7}},
	{"local-ssd-faulty", bps.RunConfig{
		Storage: bps.Storage{Media: bps.SSD, FaultEvery: 97}, Seed: 11}},
	{"cluster-shared", bps.RunConfig{
		Storage: bps.Storage{Media: bps.HDD, Servers: 2, SharedFile: true}, Seed: 7}},
	{"cluster-pinned", bps.RunConfig{
		Storage: bps.Storage{Media: bps.SSD, Servers: 2}, Seed: 13}},
	{"cluster-cache", bps.RunConfig{
		Storage: bps.Storage{Media: bps.HDD, Servers: 2, SharedFile: true,
			ClientCacheBytes: 1 << 20, ClientCacheReadAhead: 256 << 10}, Seed: 7}},
	{"cluster-faults", bps.RunConfig{
		Storage: bps.Storage{Media: bps.HDD, Servers: 2, SharedFile: true,
			FaultRate: 0.02}, Seed: 7}},
}

// TestAttributionPartitionsOverlapTime is the tentpole invariant: on
// every pinned-seed run, the per-layer exclusive times must sum exactly
// (integer nanoseconds, no rounding tolerance) to the overlapped I/O
// time T that the BPS metric divides by.
func TestAttributionPartitionsOverlapTime(t *testing.T) {
	for _, tc := range attribCases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.Observe = &bps.ObserveOptions{
				Attribution: true,
				WindowEvery: 10 * bps.Millisecond,
			}
			rep, err := bps.SimulateSequentialRead(cfg, 2, 256<<10, 64<<10)
			if err != nil {
				t.Fatal(err)
			}
			a := rep.Attribution
			if a == nil {
				t.Fatal("no attribution report")
			}
			if a.Total != rep.Metrics.IOTime {
				t.Fatalf("attribution Total = %v, want overlapped T %v", a.Total, rep.Metrics.IOTime)
			}
			if got := a.ExclusiveSum(); got != a.Total {
				t.Fatalf("exclusive sum = %v, want exactly T = %v (diff %v)",
					got, a.Total, got-a.Total)
			}
			if a.Dominant() == "" {
				t.Fatal("no dominant layer on a non-empty run")
			}
			// The folded stacks are an alternative partition of T.
			var stackSum bps.Time
			for _, st := range a.Stacks {
				stackSum += st.Time
			}
			if stackSum != a.Total {
				t.Fatalf("stack sum = %v, want T = %v", stackSum, a.Total)
			}
			// The streaming windows account for every access and block.
			var ops, blocks int64
			for _, w := range a.Windows {
				ops += w.Ops
				blocks += w.Blocks
			}
			if ops != rep.Metrics.Ops || blocks != rep.Metrics.Blocks {
				t.Fatalf("windows saw %d ops / %d blocks, run had %d / %d",
					ops, blocks, rep.Metrics.Ops, rep.Metrics.Blocks)
			}
			// Per-window busy never exceeds the window and sums to T.
			var busy bps.Time
			for _, w := range a.Windows {
				if w.Busy < 0 || w.Busy > w.End-w.Start {
					t.Fatalf("window at %v busy %v out of range", w.Start, w.Busy)
				}
				busy += w.Busy
			}
			if busy != rep.Metrics.IOTime {
				t.Fatalf("window busy sum = %v, want T = %v", busy, rep.Metrics.IOTime)
			}
		})
	}
}

// TestAttributionIsTimingNeutral requires that turning the profiler on
// changes nothing about the simulation: records and metrics are
// byte-identical with attribution off and on.
func TestAttributionIsTimingNeutral(t *testing.T) {
	for _, tc := range attribCases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(observe *bps.ObserveOptions) bps.RunReport {
				cfg := tc.cfg
				cfg.Observe = observe
				rep, err := bps.SimulateSequentialRead(cfg, 2, 256<<10, 64<<10)
				if err != nil {
					t.Fatal(err)
				}
				return rep
			}
			plain := run(nil)
			attributed := run(&bps.ObserveOptions{
				Attribution: true,
				WindowEvery: 5 * bps.Millisecond,
			})
			if !reflect.DeepEqual(plain.Records, attributed.Records) {
				t.Fatal("attribution changed the records")
			}
			if plain.Metrics != attributed.Metrics {
				t.Fatalf("attribution changed the metrics:\n off %+v\n  on %+v",
					plain.Metrics, attributed.Metrics)
			}
			var a, b bytes.Buffer
			if err := bps.WriteTraceCSV(&a, plain.Records); err != nil {
				t.Fatal(err)
			}
			if err := bps.WriteTraceCSV(&b, attributed.Records); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Fatal("attribution changed the trace CSV bytes")
			}
		})
	}
}

// TestAttributionConcurrentApps checks the partition invariant on the
// multi-application path, where the app union is built from several
// overlapping applications' records.
func TestAttributionConcurrentApps(t *testing.T) {
	cfg := bps.RunConfig{
		Storage: bps.Storage{Media: bps.HDD, Servers: 2},
		Seed:    7,
		Observe: &bps.ObserveOptions{Attribution: true},
	}
	combined, _, err := bps.SimulateConcurrentApps(cfg,
		bps.AppSpec{Name: "a", Processes: 1, BytesPerProcess: 128 << 10, RecordSize: 64 << 10},
		bps.AppSpec{Name: "b", Processes: 1, BytesPerProcess: 128 << 10, RecordSize: 32 << 10,
			ComputePerOp: bps.Millisecond},
	)
	if err != nil {
		t.Fatal(err)
	}
	a := combined.Attribution
	if a == nil {
		t.Fatal("no attribution report")
	}
	if a.Total != combined.Metrics.IOTime {
		t.Fatalf("Total = %v, want T = %v", a.Total, combined.Metrics.IOTime)
	}
	if got := a.ExclusiveSum(); got != a.Total {
		t.Fatalf("exclusive sum = %v, want exactly T = %v", got, a.Total)
	}
}

// TestAttributionFoldedExport: WriteFolded output is deterministic for
// a pinned seed and parses back to the report's stacks.
func TestAttributionFoldedExport(t *testing.T) {
	cfg := attribCases[2].cfg // cluster-shared
	cfg.Observe = &bps.ObserveOptions{Attribution: true}
	run := func() []byte {
		rep, err := bps.SimulateSequentialRead(cfg, 2, 256<<10, 64<<10)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.Attribution.WriteFolded(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first, second := run(), run()
	if !bytes.Equal(first, second) {
		t.Fatalf("folded output not deterministic:\n%s\nvs\n%s", first, second)
	}
	if len(first) == 0 {
		t.Fatal("empty folded output on an instrumented cluster run")
	}
}
