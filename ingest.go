package bps

import (
	"fmt"
	"io"
	"os"

	"bps/internal/obs/ingest"
	"bps/internal/workload"
)

// IOLog is a parsed Darshan-style I/O log: timestamped per-rank
// read/write segments plus optional per-rank module counters that
// cross-check them. Build one with ReadLog/ReadLogs (or the codec
// functions directly) and replay it with ReplayLog; Log.Records turns
// it into the paper's 32-byte records for post-hoc metrics without any
// simulation.
type IOLog = ingest.Log

// LogSegment is one timestamped access of an IOLog.
type LogSegment = ingest.Segment

// LogCounter is one per-rank per-file counter record of an IOLog.
type LogCounter = ingest.Counter

// Access is one offset-aware replayable access reconstructed from an
// ingested log (see IOLog.Accesses and ReplayAccesses).
type Access = workload.Access

// ReadLog parses one Darshan-style log file. The format is sniffed from
// the name: .csv reads the segment table (rank,file,op,offset,length,
// start_s,end_s with a header row), anything else the JSONL form (one
// object per line, "type": "segment" or "counter"). The log is
// validated before being returned: segment sanity plus, when the
// recognized POSIX_* counters are present, an exact cross-check of
// operation counts and byte totals against the segments.
func ReadLog(path string) (*IOLog, error) {
	return ReadLogs(path)
}

// ReadLogs parses and merges several log files of one job (per-rank
// logs, or counters and segments split across files), then validates
// the merged whole.
func ReadLogs(paths ...string) (*IOLog, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("bps: no log files given")
	}
	merged := &IOLog{}
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		l, err := ingest.ReadAuto(path, f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("bps: %s: %w", path, err)
		}
		merged.Append(l)
	}
	if err := merged.Validate(); err != nil {
		return nil, err
	}
	return merged, nil
}

// ParseLogCSV parses the CSV segment-table form from a reader.
func ParseLogCSV(r io.Reader) (*IOLog, error) { return ingest.ReadCSV(r) }

// ParseLogJSONL parses the JSONL form from a reader.
func ParseLogJSONL(r io.Reader) (*IOLog, error) { return ingest.ReadJSONL(r) }

// WriteLogCSV encodes a log's segments as the CSV segment table.
func WriteLogCSV(w io.Writer, l *IOLog) error { return ingest.WriteCSV(w, l) }

// WriteLogJSONL encodes a full log (counters and segments) as JSONL.
func WriteLogJSONL(w io.Writer, l *IOLog) error { return ingest.WriteJSONL(w, l) }

// ReplayLog re-issues an ingested log against a simulated stack: the
// log's access stream (one file slot per distinct rank/file pair, one
// replay process per rank, original offsets and think time preserved)
// runs through the same middleware path every synthetic workload uses.
// Ingestion and replay are deterministic: the same log and config
// produce a bit-identical RunReport every time.
func ReplayLog(cfg RunConfig, l *IOLog) (RunReport, error) {
	if err := l.Validate(); err != nil {
		return RunReport{}, err
	}
	accs, _ := l.Accesses()
	return ReplayAccesses(cfg, accs)
}
